package core

import (
	"errors"
	"testing"

	"hurricane/internal/machine"
)

// testEnv bundles a booted kernel with a client and a dummy service.
type testEnv struct {
	m *machine.Machine
	k *Kernel
}

func newEnv(t *testing.T, procs int) *testEnv {
	t.Helper()
	m := machine.MustNew(procs, machine.DefaultParams())
	return &testEnv{m: m, k: NewKernel(m)}
}

// nullHandler is the paper's dummy server: the prologue/epilogue charges
// are made by the facility; the body does nothing extra.
func nullHandler(ctx *Ctx, args *Args) {
	args.SetRC(RCOK)
}

func (e *testEnv) bindNull(t *testing.T, name string, userSpace bool, mutate func(*ServiceConfig)) *Service {
	t.Helper()
	server := e.k.KernelServer()
	if userSpace {
		server = e.k.NewServerProgram(name+".prog", 0)
	}
	cfg := ServiceConfig{Name: name, Server: server, Handler: nullHandler}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := e.k.BindService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestNullCallRoundTrip(t *testing.T) {
	e := newEnv(t, 1)
	svc := e.bindNull(t, "null", true, nil)
	c := e.k.NewClientProgram("client", 0)

	var args Args
	args[0], args[1] = 7, 35
	args.SetOp(9, 0)
	if err := c.Call(svc.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args.RC() != RCOK {
		t.Fatalf("rc = %s", RCString(args.RC()))
	}
	if svc.Stats.Calls != 1 {
		t.Fatalf("Calls = %d", svc.Stats.Calls)
	}
	if c.P().Now() == 0 {
		t.Fatal("call charged no cycles")
	}
	// The trap balance must be restored.
	if c.P().Mode() != machine.ModeUser {
		t.Fatal("processor stuck in supervisor mode after call")
	}
}

func TestCallPassesEightWordsBothWays(t *testing.T) {
	e := newEnv(t, 1)
	echo := func(ctx *Ctx, args *Args) {
		for i := 0; i < NumArgWords-1; i++ {
			args[i] = args[i] + 1000
		}
		args.SetRC(RCOK)
	}
	server := e.k.NewServerProgram("echo.prog", 0)
	svc, err := e.k.BindService(ServiceConfig{Name: "echo", Server: server, Handler: echo})
	if err != nil {
		t.Fatal(err)
	}
	c := e.k.NewClientProgram("client", 0)

	var args Args
	for i := 0; i < NumArgWords-1; i++ {
		args[i] = uint32(i)
	}
	args.SetOp(1, 2)
	if err := c.Call(svc.EP(), &args); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < NumArgWords-1; i++ {
		if args[i] != uint32(i)+1000 {
			t.Fatalf("arg %d = %d, want %d", i, args[i], i+1000)
		}
	}
}

func TestOpFlagsPacking(t *testing.T) {
	w := OpFlags(0xBEEF, 0x1234)
	if Op(w) != 0xBEEF || Flags(w) != 0x1234 {
		t.Fatalf("packing broken: op=%#x flags=%#x", Op(w), Flags(w))
	}
	var a Args
	a.SetOp(7, 3)
	if Op(a[OpFlagsWord]) != 7 || Flags(a[OpFlagsWord]) != 3 {
		t.Fatal("SetOp broken")
	}
	a.SetRC(RCNoResources)
	if a.RC() != RCNoResources {
		t.Fatal("SetRC/RC broken")
	}
}

func TestBadEntryPointFails(t *testing.T) {
	e := newEnv(t, 1)
	c := e.k.NewClientProgram("client", 0)
	var args Args
	err := c.Call(999, &args)
	if !errors.Is(err, ErrBadEntryPoint) {
		t.Fatalf("err = %v, want bad entry point", err)
	}
	if args.RC() != RCBadEntryPoint {
		t.Fatalf("rc = %s", RCString(args.RC()))
	}
	if c.P().Mode() != machine.ModeUser {
		t.Fatal("failed call left processor in supervisor mode")
	}
}

func TestFirstCallCreatesWorkerViaFrank(t *testing.T) {
	e := newEnv(t, 1)
	svc := e.bindNull(t, "null", true, nil)
	c := e.k.NewClientProgram("client", 0)

	if got := e.k.WorkerPoolSize(0, svc.EP()); got != 0 {
		t.Fatalf("pool should start empty, got %d", got)
	}
	var args Args
	if err := c.Call(svc.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if svc.Stats.FrankRedirects != 1 || svc.Stats.WorkersCreated != 1 {
		t.Fatalf("redirects=%d created=%d, want 1/1", svc.Stats.FrankRedirects, svc.Stats.WorkersCreated)
	}
	if got := e.k.WorkerPoolSize(0, svc.EP()); got != 1 {
		t.Fatalf("pool size after call = %d, want 1", got)
	}
	// Second call reuses the pooled worker — no new redirect.
	if err := c.Call(svc.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if svc.Stats.FrankRedirects != 1 {
		t.Fatalf("redirects = %d after warm call, want 1", svc.Stats.FrankRedirects)
	}
}

func TestWarmCallIsCheaperAndSteady(t *testing.T) {
	e := newEnv(t, 1)
	svc := e.bindNull(t, "null", true, nil)
	c := e.k.NewClientProgram("client", 0)
	p := c.P()

	var args Args
	if err := c.Call(svc.EP(), &args); err != nil { // cold: worker creation etc.
		t.Fatal(err)
	}
	cold := p.Now()

	measure := func() int64 {
		before := p.Now()
		if err := c.Call(svc.EP(), &args); err != nil {
			t.Fatal(err)
		}
		return p.Now() - before
	}
	w1 := measure()
	w2 := measure()
	w3 := measure()
	if w1 >= cold {
		t.Fatalf("warm call (%d) not cheaper than cold boot sequence (%d)", w1, cold)
	}
	if w2 != w3 {
		t.Fatalf("steady-state calls differ: %d vs %d (nondeterminism?)", w2, w3)
	}
}

func TestCallIsDeterministic(t *testing.T) {
	run := func() int64 {
		m := machine.MustNew(2, machine.DefaultParams())
		k := NewKernel(m)
		server := k.NewServerProgram("s", 0)
		svc, err := k.BindService(ServiceConfig{Name: "s", Server: server, Handler: nullHandler})
		if err != nil {
			t.Fatal(err)
		}
		c := k.NewClientProgram("c", 0)
		var args Args
		for i := 0; i < 5; i++ {
			if err := c.Call(svc.EP(), &args); err != nil {
				t.Fatal(err)
			}
		}
		return c.P().Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical runs diverged: %d vs %d cycles", a, b)
	}
}

func TestUserToKernelCheaperThanUserToUser(t *testing.T) {
	e := newEnv(t, 1)
	user := e.bindNull(t, "usr", true, nil)
	kern := e.bindNull(t, "krn", false, nil)
	c := e.k.NewClientProgram("client", 0)
	p := c.P()

	var args Args
	// Warm both paths.
	for i := 0; i < 3; i++ {
		if err := c.Call(user.EP(), &args); err != nil {
			t.Fatal(err)
		}
		if err := c.Call(kern.EP(), &args); err != nil {
			t.Fatal(err)
		}
	}
	cost := func(ep EntryPointID) int64 {
		before := p.Now()
		if err := c.Call(ep, &args); err != nil {
			t.Fatal(err)
		}
		return p.Now() - before
	}
	// Measure each twice in alternation so the user-to-user TLB flush
	// penalty (which hits the *other* path's entries too) is steady.
	u2u := cost(user.EP())
	u2k := cost(kern.EP())
	if u2k >= u2u {
		t.Fatalf("user-to-kernel (%d cy) should be cheaper than user-to-user (%d cy)", u2k, u2u)
	}
}

func TestHoldCDIsCheaper(t *testing.T) {
	e := newEnv(t, 1)
	pooled := e.bindNull(t, "pooled", true, nil)
	held := e.bindNull(t, "held", true, func(cfg *ServiceConfig) { cfg.HoldCD = true })
	c := e.k.NewClientProgram("client", 0)
	p := c.P()

	var args Args
	for i := 0; i < 3; i++ {
		if err := c.Call(pooled.EP(), &args); err != nil {
			t.Fatal(err)
		}
		if err := c.Call(held.EP(), &args); err != nil {
			t.Fatal(err)
		}
	}
	cost := func(ep EntryPointID) int64 {
		before := p.Now()
		if err := c.Call(ep, &args); err != nil {
			t.Fatal(err)
		}
		return p.Now() - before
	}
	cPooled := cost(pooled.EP())
	cHeld := cost(held.EP())
	if cHeld >= cPooled {
		t.Fatalf("held-CD call (%d cy) should be cheaper than pooled (%d cy)", cHeld, cPooled)
	}
	// The paper reports 2-3 us saved; accept a generous 1-5 us band.
	params := e.m.Params()
	saved := params.CyclesToMicros(cPooled - cHeld)
	if saved < 1 || saved > 5 {
		t.Fatalf("held-CD saving = %.1f us, want within [1,5]", saved)
	}
}

func TestCommonCaseTouchesNoRemoteMemory(t *testing.T) {
	// The locality claim: a warm call on processor 3 must not access
	// any address homed on another node (besides replicated code).
	e := newEnv(t, 4)
	server := e.k.NewServerProgram("s", 3)
	svc, err := e.k.BindService(ServiceConfig{Name: "s", Server: server, Handler: nullHandler})
	if err != nil {
		t.Fatal(err)
	}
	c := e.k.NewClientProgram("client", 3)
	p := c.P()

	var args Args
	if err := c.Call(svc.EP(), &args); err != nil {
		t.Fatal(err)
	}
	// In the steady state the call must add zero idle and be entirely
	// local: we verify by checking the cost equals the same call made
	// on a single-processor machine (where everything is trivially
	// local).
	before := p.Now()
	if err := c.Call(svc.EP(), &args); err != nil {
		t.Fatal(err)
	}
	multi := p.Now() - before

	e1 := newEnv(t, 1)
	server1 := e1.k.NewServerProgram("s", 0)
	svc1, err := e1.k.BindService(ServiceConfig{Name: "s", Server: server1, Handler: nullHandler})
	if err != nil {
		t.Fatal(err)
	}
	c1 := e1.k.NewClientProgram("client", 0)
	if err := c1.Call(svc1.EP(), &args); err != nil {
		t.Fatal(err)
	}
	before = c1.P().Now()
	if err := c1.Call(svc1.EP(), &args); err != nil {
		t.Fatal(err)
	}
	single := c1.P().Now() - before
	if multi != single {
		t.Fatalf("warm call on proc 3 of 4 costs %d cy, on 1-proc machine %d cy: remote accesses leaked into the fast path", multi, single)
	}
}

func TestAuthorizationHook(t *testing.T) {
	e := newEnv(t, 1)
	allowed := uint32(0)
	svc := e.bindNull(t, "secure", true, func(cfg *ServiceConfig) {
		cfg.Authorize = func(prog uint32) bool { return prog == allowed }
	})
	good := e.k.NewClientProgram("good", 0)
	allowed = good.Process().ProgramID()
	bad := e.k.NewClientProgram("bad", 0)

	var args Args
	if err := good.Call(svc.EP(), &args); err != nil {
		t.Fatalf("authorized caller rejected: %v", err)
	}
	err := bad.Call(svc.EP(), &args)
	if !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("err = %v, want permission denied", err)
	}
	if args.RC() != RCPermissionDenied {
		t.Fatalf("rc = %s", RCString(args.RC()))
	}
	if svc.Stats.AuthFailures != 1 {
		t.Fatalf("AuthFailures = %d", svc.Stats.AuthFailures)
	}
	if bad.P().Mode() != machine.ModeUser {
		t.Fatal("denied call left supervisor mode")
	}
}

func TestNestedCallServerAsClient(t *testing.T) {
	e := newEnv(t, 1)
	inner := e.bindNull(t, "inner", true, nil)
	outerServer := e.k.NewServerProgram("outer.prog", 0)
	var nestedErr error
	outer, err := e.k.BindService(ServiceConfig{
		Name:   "outer",
		Server: outerServer,
		Handler: func(ctx *Ctx, args *Args) {
			var in Args
			in[0] = args[0] * 2
			nestedErr = ctx.Call(inner.EP(), &in)
			args[1] = in[0]
			args.SetRC(RCOK)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := e.k.NewClientProgram("client", 0)
	var args Args
	args[0] = 21
	if err := c.Call(outer.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if nestedErr != nil {
		t.Fatalf("nested call failed: %v", nestedErr)
	}
	if args[1] != 42 {
		t.Fatalf("nested result = %d, want 42", args[1])
	}
	if inner.Stats.Calls != 1 || outer.Stats.Calls != 1 {
		t.Fatal("call counts wrong")
	}
	if e.k.Stats.NestedCalls != 1 {
		t.Fatalf("NestedCalls = %d", e.k.Stats.NestedCalls)
	}
	if c.P().Mode() != machine.ModeUser {
		t.Fatal("trap imbalance after nested call")
	}
}

func TestCDPoolSharedAcrossServices(t *testing.T) {
	// Two services in the same trust group on one processor serially
	// share call descriptors (and hence stack pages).
	e := newEnv(t, 1)
	a := e.bindNull(t, "a", true, nil)
	b := e.bindNull(t, "b", true, nil)
	c := e.k.NewClientProgram("client", 0)

	var args Args
	if err := c.Call(a.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(b.EP(), &args); err != nil {
		t.Fatal(err)
	}
	// Both calls drew from the same default pool: no extra CDs created
	// beyond the boot preallocation.
	if got := e.k.CDPoolSize(0, 0); got != initialCDsPerProc {
		t.Fatalf("CD pool size = %d, want %d", got, initialCDsPerProc)
	}
}

func TestTrustGroupsSegregateCDs(t *testing.T) {
	e := newEnv(t, 1)
	a := e.bindNull(t, "a", true, func(cfg *ServiceConfig) { cfg.TrustGroup = 1 })
	c := e.k.NewClientProgram("client", 0)
	var args Args
	if err := c.Call(a.EP(), &args); err != nil {
		t.Fatal(err)
	}
	// Group 1 had no preallocated CDs: one was created on demand and
	// returned to group 1's pool, not group 0's.
	if got := e.k.CDPoolSize(0, 1); got != 1 {
		t.Fatalf("group-1 pool = %d, want 1", got)
	}
	if got := e.k.CDPoolSize(0, 0); got != initialCDsPerProc {
		t.Fatalf("group-0 pool disturbed: %d", got)
	}
}

func TestMultiPageStacks(t *testing.T) {
	e := newEnv(t, 1)
	ps := e.k.Layout().PageSize()
	touched := false
	server := e.k.NewServerProgram("big.prog", 0)
	svc, err := e.k.BindService(ServiceConfig{
		Name:       "big",
		Server:     server,
		StackPages: 3,
		Handler: func(ctx *Ctx, args *Args) {
			// Touch deep into the second and third stack pages.
			ctx.Stack(ps+64, 32, machine.Store)
			ctx.Stack(2*ps+64, 32, machine.Store)
			touched = true
			args.SetRC(RCOK)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := e.k.NewClientProgram("client", 0)
	var args Args
	if err := c.Call(svc.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if !touched {
		t.Fatal("handler did not run")
	}
	// After return the extra pages are unmapped again.
	if server.Space().MappedPages() != 0 {
		t.Fatalf("stack pages leaked: %d still mapped", server.Space().MappedPages())
	}
}

func TestWorkerInitHandlerRunsOnce(t *testing.T) {
	e := newEnv(t, 1)
	server := e.k.NewServerProgram("init.prog", 0)
	inits, calls := 0, 0
	var steady Handler
	steady = func(ctx *Ctx, args *Args) {
		calls++
		args.SetRC(RCOK)
	}
	svc, err := e.k.BindService(ServiceConfig{
		Name:   "init",
		Server: server,
		InitHandler: func(ctx *Ctx, args *Args) {
			inits++
			ctx.SetHandler(steady)
			steady(ctx, args) // handle this first call too
		},
		Handler: steady,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := e.k.NewClientProgram("client", 0)
	var args Args
	for i := 0; i < 4; i++ {
		if err := c.Call(svc.EP(), &args); err != nil {
			t.Fatal(err)
		}
	}
	if inits != 1 {
		t.Fatalf("init ran %d times, want 1", inits)
	}
	if calls != 4 {
		t.Fatalf("steady handler ran %d times, want 4", calls)
	}
}

func TestPerProcessorPoolsAreIndependent(t *testing.T) {
	e := newEnv(t, 2)
	svc := e.bindNull(t, "null", true, nil)
	c0 := e.k.NewClientProgram("c0", 0)
	c1 := e.k.NewClientProgram("c1", 1)

	var args Args
	if err := c0.Call(svc.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if err := c1.Call(svc.EP(), &args); err != nil {
		t.Fatal(err)
	}
	// Each processor created its own worker.
	if svc.Stats.WorkersCreated != 2 {
		t.Fatalf("WorkersCreated = %d, want 2 (one per processor)", svc.Stats.WorkersCreated)
	}
	if e.k.WorkerPoolSize(0, svc.EP()) != 1 || e.k.WorkerPoolSize(1, svc.EP()) != 1 {
		t.Fatal("per-processor pools wrong")
	}
}
