package core

import "testing"

// TestMultiServiceServer covers the paper's footnote 3: "If a server
// supports multiple services, there is one pool per service." One
// server program exports two services; each gets its own per-processor
// worker pool, while both draw CDs from the shared per-processor pool.
func TestMultiServiceServer(t *testing.T) {
	e := newEnv(t, 1)
	prog := e.k.NewServerProgram("multi", 0)

	read, err := e.k.BindService(ServiceConfig{
		Name:   "multi.read",
		Server: prog,
		Handler: func(ctx *Ctx, args *Args) {
			args[0] = 1
			args.SetRC(RCOK)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	write, err := e.k.BindService(ServiceConfig{
		Name:   "multi.write",
		Server: prog,
		Handler: func(ctx *Ctx, args *Args) {
			args[0] = 2
			args.SetRC(RCOK)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if read.Server() != write.Server() {
		t.Fatal("services should share the server program")
	}

	c := e.k.NewClientProgram("client", 0)
	var args Args
	if err := c.Call(read.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args[0] != 1 {
		t.Fatal("read handler wrong")
	}
	if err := c.Call(write.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args[0] != 2 {
		t.Fatal("write handler wrong")
	}

	// One pool per service: each service created its own worker even
	// though they share the address space.
	if e.k.WorkerPoolSize(0, read.EP()) != 1 || e.k.WorkerPoolSize(0, write.EP()) != 1 {
		t.Fatalf("pools: read=%d write=%d, want 1 each",
			e.k.WorkerPoolSize(0, read.EP()), e.k.WorkerPoolSize(0, write.EP()))
	}
	if read.Stats.WorkersCreated != 1 || write.Stats.WorkersCreated != 1 {
		t.Fatal("each service should have provisioned its own worker")
	}
	// Their workers have distinct stack slots in the shared space.
	wr := e.k.perProc[0].entry(read.EP()).workers[0]
	ww := e.k.perProc[0].entry(write.EP()).workers[0]
	if wr.StackVA() == ww.StackVA() {
		t.Fatal("workers of different services share a stack VA")
	}
	// But both calls recycled the same CD (shared per-processor pool).
	if got := e.k.CDPoolSize(0, 0); got != initialCDsPerProc {
		t.Fatalf("CD pool = %d, want %d", got, initialCDsPerProc)
	}
	// Killing one service leaves the other running.
	if err := c.DestroyService(read.EP(), true); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(write.EP(), &args); err != nil {
		t.Fatalf("sibling service died with its peer: %v", err)
	}
}
