package copyserver

import (
	"testing"

	"hurricane/internal/addrspace"
	"hurricane/internal/core"
	"hurricane/internal/machine"
)

// env: a kernel with a CopyServer, a client (grantor) with a mapped
// data buffer, and a user server that consumes the grant.
type env struct {
	k      *core.Kernel
	cs     *CopyServer
	client *core.Client
	bufVA  machine.Addr
}

func setup(t *testing.T) *env {
	t.Helper()
	k := core.NewKernel(machine.MustNew(2, machine.DefaultParams()))
	cs, err := Install(k)
	if err != nil {
		t.Fatal(err)
	}
	client := k.NewClientProgram("client", 0)
	// Map a 2-page data buffer into the client's space.
	bufVA := machine.Addr(0x00400000)
	ps := k.Layout().PageSize()
	for i := 0; i < 2; i++ {
		frame := k.Layout().GetFrame(0)
		k.VM().Map(client.P(), client.Process().Space(), bufVA+machine.Addr(i*ps), frame, addrspace.RW)
	}
	return &env{k: k, cs: cs, client: client, bufVA: bufVA}
}

func TestGrantAndCopyFromByServer(t *testing.T) {
	e := setup(t)
	// A user server that, when called, pulls 256 bytes from the
	// client's granted buffer into its own stack region via CopyFrom.
	prog := e.k.NewServerProgram("consumer", 0)
	var copyErr error
	var copied uint32
	svc, err := e.k.BindService(core.ServiceConfig{
		Name:   "consumer",
		Server: prog,
		Handler: func(ctx *core.Ctx, args *core.Args) {
			var req core.Args
			req[0] = args[0]                        // grant ID
			req[1] = args[1]                        // grantor VA
			req[2] = 256                            // size
			req[3] = uint32(ctx.Worker().StackVA()) // local destination
			req.SetOp(OpCopyFrom, 0)
			copyErr = ctx.Call(e.cs.EP(), &req)
			copied = req[0]
			args.SetRC(req.RC())
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	gid, err := Grant(e.client, e.cs.EP(), prog.ProgramID(), e.bufVA, 4096, 1 /*read*/)
	if err != nil {
		t.Fatal(err)
	}

	var args core.Args
	args[0], args[1] = gid, uint32(e.bufVA)
	if err := e.client.Call(svc.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if copyErr != nil {
		t.Fatalf("nested CopyFrom failed: %v", copyErr)
	}
	if args.RC() != core.RCOK || copied != 256 {
		t.Fatalf("rc=%s copied=%d", core.RCString(args.RC()), copied)
	}
	if e.cs.BytesCopied != 256 || e.cs.Copies != 1 {
		t.Fatalf("stats: bytes=%d copies=%d", e.cs.BytesCopied, e.cs.Copies)
	}
}

func TestCopyRequiresGrant(t *testing.T) {
	e := setup(t)
	var args core.Args
	args[0], args[1], args[2], args[3] = 999, uint32(e.bufVA), 64, uint32(e.bufVA)
	args.SetOp(OpCopyFrom, 0)
	if err := e.client.Call(e.cs.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args.RC() != core.RCPermissionDenied {
		t.Fatalf("rc = %s, want permission denied", core.RCString(args.RC()))
	}
}

func TestCopyHonorsGranteeIdentity(t *testing.T) {
	e := setup(t)
	other := e.k.NewClientProgram("other", 1)
	gid, err := Grant(e.client, e.cs.EP(), 0xDEAD, e.bufVA, 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	var args core.Args
	args[0], args[1], args[2], args[3] = gid, uint32(e.bufVA), 64, uint32(e.bufVA)
	args.SetOp(OpCopyFrom, 0)
	if err := other.Call(e.cs.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args.RC() != core.RCPermissionDenied {
		t.Fatalf("wrong grantee passed auth: rc = %s", core.RCString(args.RC()))
	}
}

func TestCopyHonorsProtection(t *testing.T) {
	e := setup(t)
	prog := e.k.NewServerProgram("writer", 0)
	gid, err := Grant(e.client, e.cs.EP(), prog.ProgramID(), e.bufVA, 4096, 1 /*read only*/)
	if err != nil {
		t.Fatal(err)
	}
	var rc uint32
	svc, err := e.k.BindService(core.ServiceConfig{
		Name:   "writer",
		Server: prog,
		Handler: func(ctx *core.Ctx, args *core.Args) {
			var req core.Args
			req[0], req[1], req[2] = args[0], args[1], 64
			req[3] = uint32(ctx.Worker().StackVA())
			req.SetOp(OpCopyTo, 0) // write into a read-only grant
			if err := ctx.Call(e.cs.EP(), &req); err != nil {
				t.Errorf("call itself should deliver: %v", err)
			}
			rc = req.RC()
			args.SetRC(core.RCOK)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var args core.Args
	args[0], args[1] = gid, uint32(e.bufVA)
	if err := e.client.Call(svc.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if rc != core.RCPermissionDenied {
		t.Fatalf("rc = %s, want permission denied", core.RCString(rc))
	}
}

func TestCopyHonorsRegionBounds(t *testing.T) {
	e := setup(t)
	gid, err := Grant(e.client, e.cs.EP(), e.client.Process().ProgramID(), e.bufVA, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	var args core.Args
	args[0], args[1], args[2], args[3] = gid, uint32(e.bufVA)+64, 128, uint32(e.bufVA)
	args.SetOp(OpCopyFrom, 0)
	if err := e.client.Call(e.cs.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args.RC() != core.RCPermissionDenied {
		t.Fatalf("out-of-bounds copy passed: rc = %s", core.RCString(args.RC()))
	}
}

func TestRevoke(t *testing.T) {
	e := setup(t)
	self := e.client.Process().ProgramID()
	gid, err := Grant(e.client, e.cs.EP(), self, e.bufVA, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	var args core.Args
	args[0] = gid
	args.SetOp(OpRevoke, 0)
	if err := e.client.Call(e.cs.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args.RC() != core.RCOK {
		t.Fatalf("revoke rc = %s", core.RCString(args.RC()))
	}
	// The grant is gone.
	args = core.Args{}
	args[0], args[1], args[2], args[3] = gid, uint32(e.bufVA), 64, uint32(e.bufVA)
	args.SetOp(OpCopyFrom, 0)
	if err := e.client.Call(e.cs.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args.RC() != core.RCPermissionDenied {
		t.Fatal("copy against revoked grant succeeded")
	}
}

func TestRevokeOnlyByGrantor(t *testing.T) {
	e := setup(t)
	other := e.k.NewClientProgram("other", 1)
	gid, err := Grant(e.client, e.cs.EP(), 7, e.bufVA, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	var args core.Args
	args[0] = gid
	args.SetOp(OpRevoke, 0)
	if err := other.Call(e.cs.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args.RC() != core.RCPermissionDenied {
		t.Fatal("non-grantor revoked a grant")
	}
}

func TestGrantValidation(t *testing.T) {
	e := setup(t)
	if _, err := Grant(e.client, e.cs.EP(), 1, e.bufVA, 0, 1); err == nil {
		t.Fatal("zero-size grant accepted")
	}
	if _, err := Grant(e.client, e.cs.EP(), 1, e.bufVA, 64, 0); err == nil {
		t.Fatal("no-protection grant accepted")
	}
}

func TestBulkCopyCostScalesWithSize(t *testing.T) {
	e := setup(t)
	self := e.client.Process().ProgramID()
	gid, err := Grant(e.client, e.cs.EP(), self, e.bufVA, 8192, 1)
	if err != nil {
		t.Fatal(err)
	}
	cost := func(size uint32) int64 {
		p := e.client.P()
		before := p.Now()
		var args core.Args
		args[0], args[1], args[2], args[3] = gid, uint32(e.bufVA), size, uint32(e.bufVA)+4096
		args.SetOp(OpCopyFrom, 0)
		if err := e.client.Call(e.cs.EP(), &args); err != nil {
			t.Fatal(err)
		}
		if args.RC() != core.RCOK {
			t.Fatalf("rc = %s", core.RCString(args.RC()))
		}
		return p.Now() - before
	}
	small := cost(64)
	large := cost(2048)
	if large <= small {
		t.Fatalf("2 KB copy (%d cy) should cost more than 64 B (%d cy)", large, small)
	}
}

func TestRevokeAllOf(t *testing.T) {
	e := setup(t)
	self := e.client.Process().ProgramID()
	if _, err := Grant(e.client, e.cs.EP(), self, e.bufVA, 128, 1); err != nil {
		t.Fatal(err)
	}
	gid, err := Grant(e.client, e.cs.EP(), self, e.bufVA+256, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := e.k.NewClientProgram("other", 1)
	otherGrant, err := Grant(other, e.cs.EP(), self, 0, 0x1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := e.cs.RevokeAllOf(e.client.Process().PID()); n != 2 {
		t.Fatalf("revoked %d grants, want 2", n)
	}
	// The dead program's grants are gone; the other program's survive.
	var args core.Args
	args[0], args[1], args[2], args[3] = gid, uint32(e.bufVA)+256, 64, uint32(e.bufVA)
	args.SetOp(OpCopyFrom, 0)
	if err := e.client.Call(e.cs.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args.RC() != core.RCPermissionDenied {
		t.Fatal("revoked grant still usable")
	}
	if _, ok := e.cs.grants[otherGrant]; !ok {
		t.Fatal("unrelated grant was dropped")
	}
}
