// Package copyserver implements the paper's bulk-data mechanism (§4.2),
// borrowed from the V system: the 8-word register transfer of a PPC
// does not address large data, so a caller grants a server permission
// to read or write selected portions of its address space, and the
// actual transfer is a separate CopyTo or CopyFrom request — a normal
// PPC — to the CopyServer, which runs in the kernel and can reach both
// address spaces.
package copyserver

import (
	"fmt"

	"hurricane/internal/addrspace"
	"hurricane/internal/core"
	"hurricane/internal/machine"
	"hurricane/internal/proc"
	"hurricane/internal/services/nameserver"
)

// CopyServer opcodes.
const (
	// OpGrant lets the caller grant the program in args[0] access to
	// [args[1], args[1]+args[2]) of its space; args[3] carries the
	// protection bits (1=read, 2=write). The grant ID returns in
	// args[0].
	OpGrant uint16 = 1
	// OpRevoke revokes grant args[0] (caller must be the grantor).
	OpRevoke uint16 = 2
	// OpCopyFrom copies args[2] bytes from the grantor's va args[1]
	// (under grant args[0]) to the caller's va args[3].
	OpCopyFrom uint16 = 3
	// OpCopyTo copies args[2] bytes from the caller's va args[3] to
	// the grantor's va args[1] (under grant args[0]).
	OpCopyTo uint16 = 4
)

// ServiceName is the name registered with the name server.
const ServiceName = "copyserver"

// copyChunk is the simulated copy loop granularity: one cache line per
// iteration, a load and a store plus loop overhead.
const copyChunkInstrs = 6

// grant is one region permission.
type grant struct {
	id      uint32
	grantor *proc.Process
	grantee uint32 // program ID allowed to use the grant
	va      machine.Addr
	size    uint32
	prot    addrspace.Prot
}

// CopyServer is the kernel-level bulk copy service.
type CopyServer struct {
	k   *core.Kernel
	svc *core.Service

	grants map[uint32]*grant
	nextID uint32

	// table is the simulated grant table (kernel memory).
	table machine.Addr

	Grants, Copies int64
	BytesCopied    int64
}

// Install binds the CopyServer as a kernel service.
func Install(k *core.Kernel) (*CopyServer, error) {
	cs := &CopyServer{
		k:      k,
		grants: make(map[uint32]*grant),
		nextID: 1,
		table:  k.Layout().AllocAligned(0, 1024),
	}
	svc, err := k.BindService(core.ServiceConfig{
		Name:          ServiceName,
		Server:        k.KernelServer(),
		Handler:       cs.handle,
		HandlerInstrs: 40,
	})
	if err != nil {
		return nil, err
	}
	cs.svc = svc
	return cs, nil
}

// Service returns the bound service.
func (cs *CopyServer) Service() *core.Service { return cs.svc }

// EP returns the CopyServer's entry point.
func (cs *CopyServer) EP() core.EntryPointID { return cs.svc.EP() }

// RegisterName registers the CopyServer with the name server.
func (cs *CopyServer) RegisterName(c *core.Client) error {
	return nameserver.Register(c, ServiceName, cs.svc.EP())
}

func (cs *CopyServer) handle(ctx *core.Ctx, args *core.Args) {
	ctx.Exec(20)
	ctx.Access(cs.table+machine.Addr((args[0]%64)*16), 16, machine.Load)
	switch core.Op(args[core.OpFlagsWord]) {
	case OpGrant:
		cs.doGrant(ctx, args)
	case OpRevoke:
		cs.doRevoke(ctx, args)
	case OpCopyFrom:
		cs.doCopy(ctx, args, false)
	case OpCopyTo:
		cs.doCopy(ctx, args, true)
	default:
		args.SetRC(core.RCBadRequest)
	}
}

// callerProcess finds the calling process; grants are keyed to the
// grantor's process so its address space can be reached later.
func (cs *CopyServer) callerProcess(ctx *core.Ctx) *proc.Process {
	return ctx.CallerProcess()
}

func (cs *CopyServer) doGrant(ctx *core.Ctx, args *core.Args) {
	grantor := cs.callerProcess(ctx)
	if grantor == nil {
		args.SetRC(core.RCBadRequest)
		return
	}
	prot := addrspace.Prot(0)
	if args[3]&1 != 0 {
		prot |= addrspace.ProtRead
	}
	if args[3]&2 != 0 {
		prot |= addrspace.ProtWrite
	}
	if prot == 0 || args[2] == 0 {
		args.SetRC(core.RCBadRequest)
		return
	}
	g := &grant{
		id:      cs.nextID,
		grantor: grantor,
		grantee: args[0],
		va:      machine.Addr(args[1]),
		size:    args[2],
		prot:    prot,
	}
	cs.nextID++
	cs.grants[g.id] = g
	cs.Grants++
	ctx.Access(cs.table+machine.Addr((g.id%64)*16), 16, machine.Store)
	args[0] = g.id
	args.SetRC(core.RCOK)
}

func (cs *CopyServer) doRevoke(ctx *core.Ctx, args *core.Args) {
	g, ok := cs.grants[args[0]]
	if !ok || g.grantor != cs.callerProcess(ctx) {
		args.SetRC(core.RCPermissionDenied)
		return
	}
	ctx.Access(cs.table+machine.Addr((g.id%64)*16), 16, machine.Store)
	delete(cs.grants, args[0])
	args.SetRC(core.RCOK)
}

// doCopy moves bytes between the grantor's space and the caller's
// space, charging the copy loop in both spaces.
func (cs *CopyServer) doCopy(ctx *core.Ctx, args *core.Args, toGrantor bool) {
	caller := cs.callerProcess(ctx)
	if caller == nil {
		args.SetRC(core.RCBadRequest)
		return
	}
	g, ok := cs.grants[args[0]]
	if !ok {
		args.SetRC(core.RCPermissionDenied)
		return
	}
	if g.grantee != caller.ProgramID() {
		args.SetRC(core.RCPermissionDenied)
		return
	}
	need := addrspace.ProtRead
	if toGrantor {
		need = addrspace.ProtWrite
	}
	if g.prot&need == 0 {
		args.SetRC(core.RCPermissionDenied)
		return
	}
	gva := machine.Addr(args[1])
	size := args[2]
	cva := machine.Addr(args[3])
	if gva < g.va || uint32(gva-g.va)+size > g.size {
		args.SetRC(core.RCPermissionDenied)
		return
	}

	p := ctx.P()
	vm := cs.k.VM()
	line := p.Params().CacheLineSize
	for off := uint32(0); off < size; off += uint32(line) {
		n := int(size - off)
		if n > line {
			n = line
		}
		ctx.Exec(copyChunkInstrs)
		if toGrantor {
			vm.Access(p, caller.Space(), cva+machine.Addr(off), n, machine.Load)
			vm.Access(p, g.grantor.Space(), gva+machine.Addr(off), n, machine.Store)
		} else {
			vm.Access(p, g.grantor.Space(), gva+machine.Addr(off), n, machine.Load)
			vm.Access(p, caller.Space(), cva+machine.Addr(off), n, machine.Store)
		}
	}
	cs.Copies++
	cs.BytesCopied += int64(size)
	args[0] = size
	args.SetRC(core.RCOK)
}

// RevokeAllOf removes every grant made by the given grantor process —
// the cleanup a process-teardown path runs so that dead programs'
// address-space permissions cannot linger (the §4.5.2 death-and-
// destruction discipline applied to grants). Returns how many grants
// were dropped. Host-side administrative operation.
func (cs *CopyServer) RevokeAllOf(grantorPID int) int {
	n := 0
	for id, g := range cs.grants {
		if g.grantor.PID() == grantorPID {
			delete(cs.grants, id)
			n++
		}
	}
	return n
}

// Grant issues an OpGrant from client c: grantee may access
// [va, va+size) of c's space with prot bits (1=read, 2=write).
func Grant(c *core.Client, ep core.EntryPointID, grantee uint32, va machine.Addr, size uint32, prot uint32) (uint32, error) {
	var args core.Args
	args[0], args[1], args[2], args[3] = grantee, uint32(va), size, prot
	args.SetOp(OpGrant, 0)
	if err := c.Call(ep, &args); err != nil {
		return 0, err
	}
	if rc := args.RC(); rc != core.RCOK {
		return 0, fmt.Errorf("copyserver: grant: %s", core.RCString(rc))
	}
	return args[0], nil
}
