package nameserver

import (
	"testing"
	"testing/quick"

	"hurricane/internal/core"
	"hurricane/internal/machine"
)

func setup(t *testing.T, procs int) (*core.Kernel, *Server, *core.Client) {
	t.Helper()
	k := core.NewKernel(machine.MustNew(procs, machine.DefaultParams()))
	ns, err := Install(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	return k, ns, k.NewClientProgram("client", 0)
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 || len(raw) > MaxNameLen {
			return true
		}
		// Names must be NUL-free for the packed encoding.
		name := make([]byte, 0, len(raw))
		for _, b := range raw {
			if b == 0 {
				b = 'x'
			}
			name = append(name, b)
		}
		var args core.Args
		if err := PackName(&args, string(name)); err != nil {
			return false
		}
		return UnpackName(&args) == string(name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPackNameBounds(t *testing.T) {
	var args core.Args
	if err := PackName(&args, ""); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := PackName(&args, "12345678901234"); err == nil {
		t.Fatal("oversized name accepted")
	}
	if err := PackName(&args, "123456789012"); err != nil {
		t.Fatalf("12-byte name rejected: %v", err)
	}
}

func TestRegisterLookupUnregister(t *testing.T) {
	_, ns, c := setup(t, 1)
	if err := Register(c, "bob", 42); err != nil {
		t.Fatal(err)
	}
	ep, err := Lookup(c, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if ep != 42 {
		t.Fatalf("ep = %d, want 42", ep)
	}
	if err := Unregister(c, "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup(c, "bob"); err == nil {
		t.Fatal("lookup of unregistered name succeeded")
	}
	if ns.Registrations != 1 || ns.Lookups != 2 || ns.Misses != 1 {
		t.Fatalf("stats: reg=%d lookups=%d misses=%d", ns.Registrations, ns.Lookups, ns.Misses)
	}
}

func TestDuplicateRegisterRejected(t *testing.T) {
	_, _, c := setup(t, 1)
	if err := Register(c, "svc", 10); err != nil {
		t.Fatal(err)
	}
	if err := Register(c, "svc", 11); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestUnregisterUnknownFails(t *testing.T) {
	_, _, c := setup(t, 1)
	if err := Unregister(c, "ghost"); err == nil {
		t.Fatal("unregister of unknown name succeeded")
	}
}

func TestWellKnownEntryPoint(t *testing.T) {
	k, ns, _ := setup(t, 1)
	if ns.Service().EP() != core.NameServerEP {
		t.Fatalf("name server at EP %d, want %d", ns.Service().EP(), core.NameServerEP)
	}
	if k.Service(core.NameServerEP) != ns.Service() {
		t.Fatal("kernel does not resolve the well-known EP to the name server")
	}
}

func TestLookupFromOtherProcessor(t *testing.T) {
	k, _, c0 := setup(t, 2)
	if err := Register(c0, "disk", 77); err != nil {
		t.Fatal(err)
	}
	c1 := k.NewClientProgram("client1", 1)
	ep, err := Lookup(c1, "disk")
	if err != nil {
		t.Fatal(err)
	}
	if ep != 77 {
		t.Fatalf("cross-processor lookup = %d, want 77", ep)
	}
}

func TestEndToEndDiscoveryFlow(t *testing.T) {
	// The paper's full flow: obtain an EP from Frank, register it with
	// the name server, have a client look it up and call the service.
	k, _, owner := setup(t, 1)
	prog := k.NewServerProgram("greeter.prog", 0)
	svc, err := owner.CreateService(core.ServiceConfig{
		Name:   "greeter",
		Server: prog,
		Handler: func(ctx *core.Ctx, args *core.Args) {
			args[0] = 0x9e110
			args.SetRC(core.RCOK)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(owner, "greeter", svc.EP()); err != nil {
		t.Fatal(err)
	}

	client := k.NewClientProgram("user", 0)
	ep, err := Lookup(client, "greeter")
	if err != nil {
		t.Fatal(err)
	}
	var args core.Args
	if err := client.Call(ep, &args); err != nil {
		t.Fatal(err)
	}
	if args[0] != 0x9e110 {
		t.Fatalf("service reply = %#x", args[0])
	}
}
