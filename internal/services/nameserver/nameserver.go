// Package nameserver implements the Hurricane name server (paper
// §4.5.5): a user-level server at a well-known entry point that maps
// service names to entry-point IDs. A program that becomes a PPC server
// first obtains an entry point from Frank, then registers the ID here;
// clients look the ID up once and use it directly on subsequent calls
// (requests are directed to the server, which locates the object from
// its arguments — the V/L3 style, not the Mach/Spring object-capability
// style).
package nameserver

import (
	"fmt"

	"hurricane/internal/core"
	"hurricane/internal/machine"
)

// Name server opcodes.
const (
	// OpRegister binds the packed name in args[0..2] to the entry
	// point in args[3].
	OpRegister uint16 = 1
	// OpLookup resolves the packed name in args[0..2]; the entry point
	// comes back in args[0].
	OpLookup uint16 = 2
	// OpUnregister removes the binding for the packed name.
	OpUnregister uint16 = 3
)

// MaxNameLen is the longest service name: three argument words.
const MaxNameLen = 12

// nameWords is how many argument words carry the name.
const nameWords = 3

// PackName encodes a service name into argument words 0..2. Names are
// NUL-terminated on the wire, so NUL bytes are rejected.
func PackName(args *core.Args, name string) error {
	if len(name) == 0 || len(name) > MaxNameLen {
		return fmt.Errorf("nameserver: name %q length out of range [1,%d]", name, MaxNameLen)
	}
	for i := 0; i < len(name); i++ {
		if name[i] == 0 {
			return fmt.Errorf("nameserver: name contains NUL")
		}
	}
	var buf [MaxNameLen]byte
	copy(buf[:], name)
	for i := 0; i < nameWords; i++ {
		args[i] = uint32(buf[4*i]) | uint32(buf[4*i+1])<<8 | uint32(buf[4*i+2])<<16 | uint32(buf[4*i+3])<<24
	}
	return nil
}

// UnpackName decodes a packed service name from argument words 0..2.
func UnpackName(args *core.Args) string {
	var buf [MaxNameLen]byte
	for i := 0; i < nameWords; i++ {
		w := args[i]
		buf[4*i] = byte(w)
		buf[4*i+1] = byte(w >> 8)
		buf[4*i+2] = byte(w >> 16)
		buf[4*i+3] = byte(w >> 24)
	}
	n := 0
	for n < MaxNameLen && buf[n] != 0 {
		n++
	}
	return string(buf[:n])
}

// Server is the name server instance.
type Server struct {
	k   *core.Kernel
	svc *core.Service

	// Host-side directory; the simulated cost of the hash-table probe
	// is charged against the data region below.
	names map[string]core.EntryPointID

	// table is the simulated hash table in the server's data region.
	table   machine.Addr
	buckets uint32

	Registrations int64
	Lookups       int64
	Misses        int64
}

// tableBuckets is the simulated hash-table size.
const tableBuckets = 256

// Install creates the name server program, binds it to its well-known
// entry point, and returns it. node selects where the server's data
// (and page tables) live.
func Install(k *core.Kernel, node int) (*Server, error) {
	prog := k.NewServerProgram("nameserver", node)
	ns := &Server{
		k:       k,
		names:   make(map[string]core.EntryPointID),
		buckets: tableBuckets,
	}
	ns.table = k.MapServerData(prog, 1)
	svc, err := k.BindService(core.ServiceConfig{
		Name:          "nameserver",
		Server:        prog,
		Handler:       ns.handle,
		HandlerInstrs: 30,
		EP:            core.NameServerEP,
	})
	if err != nil {
		return nil, err
	}
	ns.svc = svc
	return ns, nil
}

// Service returns the bound service.
func (ns *Server) Service() *core.Service { return ns.svc }

// hash is a deterministic string hash for bucket selection.
func hash(name string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return h
}

// handle services Register/Lookup/Unregister requests.
func (ns *Server) handle(ctx *core.Ctx, args *core.Args) {
	name := UnpackName(args)
	// Probe the simulated hash bucket (read-mostly data: cacheable).
	bucket := hash(name) % ns.buckets
	ctx.Access(ns.table+machine.Addr(bucket*8), 8, machine.Load)
	ctx.Exec(12)

	switch core.Op(args[core.OpFlagsWord]) {
	case OpRegister:
		if name == "" {
			args.SetRC(core.RCBadRequest)
			return
		}
		if _, dup := ns.names[name]; dup {
			args.SetRC(core.RCBadRequest)
			return
		}
		ctx.Access(ns.table+machine.Addr(bucket*8), 8, machine.Store)
		ns.names[name] = core.EntryPointID(args[nameWords])
		ns.Registrations++
		args.SetRC(core.RCOK)
	case OpLookup:
		ep, ok := ns.names[name]
		ns.Lookups++
		if !ok {
			ns.Misses++
			args.SetRC(core.RCBadEntryPoint)
			return
		}
		args[0] = uint32(ep)
		args.SetRC(core.RCOK)
	case OpUnregister:
		if _, ok := ns.names[name]; !ok {
			args.SetRC(core.RCBadEntryPoint)
			return
		}
		ctx.Access(ns.table+machine.Addr(bucket*8), 8, machine.Store)
		delete(ns.names, name)
		args.SetRC(core.RCOK)
	default:
		args.SetRC(core.RCBadRequest)
	}
}

// Register binds name to ep through a genuine PPC call from client c.
func Register(c *core.Client, name string, ep core.EntryPointID) error {
	var args core.Args
	if err := PackName(&args, name); err != nil {
		return err
	}
	args[nameWords] = uint32(ep)
	args.SetOp(OpRegister, 0)
	if err := c.Call(core.NameServerEP, &args); err != nil {
		return err
	}
	if rc := args.RC(); rc != core.RCOK {
		return fmt.Errorf("nameserver: register %q: %s", name, core.RCString(rc))
	}
	return nil
}

// Lookup resolves name through a genuine PPC call from client c.
func Lookup(c *core.Client, name string) (core.EntryPointID, error) {
	var args core.Args
	if err := PackName(&args, name); err != nil {
		return 0, err
	}
	args.SetOp(OpLookup, 0)
	if err := c.Call(core.NameServerEP, &args); err != nil {
		return 0, err
	}
	if rc := args.RC(); rc != core.RCOK {
		return 0, fmt.Errorf("nameserver: lookup %q: %s", name, core.RCString(rc))
	}
	return core.EntryPointID(args[0]), nil
}

// Unregister removes name through a genuine PPC call from client c.
func Unregister(c *core.Client, name string) error {
	var args core.Args
	if err := PackName(&args, name); err != nil {
		return err
	}
	args.SetOp(OpUnregister, 0)
	if err := c.Call(core.NameServerEP, &args); err != nil {
		return err
	}
	if rc := args.RC(); rc != core.RCOK {
		return fmt.Errorf("nameserver: unregister %q: %s", name, core.RCString(rc))
	}
	return nil
}
