package nameserver

import (
	"strings"
	"testing"

	"hurricane/internal/core"
)

// FuzzPackName checks that any NUL-free name that PackName accepts
// round-trips exactly through the register encoding.
func FuzzPackName(f *testing.F) {
	for _, seed := range []string{"bob", "disk", "a", "twelve-chars", "x y z", "ñame"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		var args core.Args
		err := PackName(&args, name)
		if err != nil {
			// Must only reject on length or NUL grounds.
			okLen := len(name) >= 1 && len(name) <= MaxNameLen
			if okLen && !strings.ContainsRune(name, 0) {
				t.Fatalf("valid name %q rejected: %v", name, err)
			}
			return
		}
		if got := UnpackName(&args); got != name {
			t.Fatalf("round trip %q -> %q", name, got)
		}
	})
}
