package devserver

import (
	"testing"

	"hurricane/internal/core"
	"hurricane/internal/machine"
)

func setup(t *testing.T, procs, home int) (*core.Kernel, *Disk) {
	t.Helper()
	k := core.NewKernel(machine.MustNew(procs, machine.DefaultParams()))
	d, err := Install(k, home)
	if err != nil {
		t.Fatal(err)
	}
	return k, d
}

func TestSubmitAndComplete(t *testing.T) {
	k, d := setup(t, 1, 0)
	c := k.NewClientProgram("client", 0)

	id, err := Submit(k, d, c, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.Submitted != 1 || d.IdleStarts != 1 {
		t.Fatalf("submitted=%d idleStarts=%d", d.Submitted, d.IdleStarts)
	}

	// The device raises its interrupt at the request's completion time.
	if err := d.RaiseCompletion(id); err != nil {
		t.Fatal(err)
	}
	if d.Completed != 1 {
		t.Fatalf("completed = %d", d.Completed)
	}
	// Status via a normal PPC.
	var args core.Args
	args[0] = id
	args.SetOp(OpStatus, 0)
	if err := c.Call(d.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args[1] != 1 {
		t.Fatal("request not reported complete")
	}
	// The home processor's clock advanced past the disk service time.
	if k.Machine().Proc(0).Now() < BlockTimeCycles {
		t.Fatal("completion did not advance virtual time past the block service time")
	}
}

func TestBusyDiskQueuesRequests(t *testing.T) {
	k, d := setup(t, 1, 0)
	c := k.NewClientProgram("client", 0)

	id1, err := Submit(k, d, c, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := Submit(k, d, c, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := d.requests[id1], d.requests[id2]
	if r2.DoneAt <= r1.DoneAt {
		t.Fatalf("queued request must finish after its predecessor: %d vs %d", r2.DoneAt, r1.DoneAt)
	}
	if r2.DoneAt-r1.DoneAt != BlockTimeCycles {
		t.Fatalf("head serialization wrong: gap %d", r2.DoneAt-r1.DoneAt)
	}
	if d.IdleStarts != 1 {
		t.Fatalf("idle starts = %d, want 1 (second submit found disk busy)", d.IdleStarts)
	}
}

func TestCrossProcessorSubmit(t *testing.T) {
	// A client on processor 3 submits to the device on processor 0:
	// the §4.3 cross-processor case via shared queue + remote interrupt.
	k, d := setup(t, 4, 0)
	c := k.NewClientProgram("client", 3)

	crossBefore := k.Stats.CrossCalls
	id, err := Submit(k, d, c, 55, false)
	if err != nil {
		t.Fatal(err)
	}
	if k.Stats.CrossCalls != crossBefore+1 {
		t.Fatal("remote submit did not use the cross-processor path")
	}
	if err := d.RaiseCompletion(id); err != nil {
		t.Fatal(err)
	}
	if !d.requests[id].Done {
		t.Fatal("request not completed")
	}
}

func TestInterruptLooksLikeNormalPPC(t *testing.T) {
	k, d := setup(t, 1, 0)
	c := k.NewClientProgram("client", 0)
	id, err := Submit(k, d, c, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Service().Stats.Interrupts
	if err := d.RaiseCompletion(id); err != nil {
		t.Fatal(err)
	}
	if d.Service().Stats.Interrupts != before+1 {
		t.Fatal("completion was not dispatched through the interrupt PPC variant")
	}
}

func TestCompletionOfUnknownRequestFails(t *testing.T) {
	_, d := setup(t, 1, 0)
	if err := d.RaiseCompletion(424242); err == nil {
		t.Fatal("unknown completion accepted")
	}
}

func TestQueueLockSerializesSubmitters(t *testing.T) {
	k, d := setup(t, 2, 0)
	c0 := k.NewClientProgram("c0", 0)
	// Two submitters; the second's lock acquisition is charged against
	// the shared queue word.
	if _, err := Submit(k, d, c0, 1, false); err != nil {
		t.Fatal(err)
	}
	c1 := k.NewClientProgram("c1", 1)
	if _, err := Submit(k, d, c1, 2, false); err != nil {
		t.Fatal(err)
	}
	if d.queueLock.Acquisitions < 2 {
		t.Fatalf("lock acquisitions = %d", d.queueLock.Acquisitions)
	}
}
