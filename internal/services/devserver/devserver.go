// Package devserver implements a disk device server demonstrating the
// paper's cross-processor interactions (§4.3) and interrupt dispatching
// (§4.4). The disk has a shared request queue: in the busy case a
// request is appended to the queue (uncached shared accesses guarded by
// a lock — exactly the "solutions tailored to the specific situations"
// the paper describes); in the idle case the disk starts the request
// immediately. Completion interrupts are manufactured into asynchronous
// PPC requests to the device service, which looks, from the server's
// point of view, like any other caller.
package devserver

import (
	"fmt"

	"hurricane/internal/core"
	"hurricane/internal/locks"
	"hurricane/internal/machine"
	"hurricane/internal/proc"
	"hurricane/internal/services/nameserver"
)

// Device server opcodes.
const (
	// OpSubmit submits an I/O request: args[0]=block, args[1]=isWrite.
	// The request ID comes back in args[0].
	OpSubmit uint16 = 1
	// OpCompletion is the interrupt-manufactured completion request:
	// args[0]=request ID (kernel-internal).
	OpCompletion uint16 = 2
	// OpStatus queries a request: args[0]=request ID; args[1] returns
	// 1 when complete.
	OpStatus uint16 = 3
)

// ServiceName is the registered name.
const ServiceName = "disk"

// diskServiceInstrs is the handler footprint.
const diskServiceInstrs = 50

// BlockTimeCycles is the simulated disk service time per request
// (~2 ms at 16.67 MHz — a fast 1994 disk).
const BlockTimeCycles = 33340

// Request is one disk I/O.
type Request struct {
	ID      uint32
	Block   uint32
	Write   bool
	Issuer  uint32 // program ID
	Done    bool
	DoneAt  int64 // virtual completion time on the disk's clock
	started bool
}

// Disk is the device server instance.
type Disk struct {
	k    *core.Kernel
	svc  *core.Service
	home int // processor hosting the device driver

	// driver is the device driver process: normally blocked, added to
	// the home processor's ready queue when an idle disk is started
	// (paper §4.3: "in the case of an idle disk, additionally adding
	// the disk device driver process to the ready queue").
	driver *proc.Process

	// queue is the shared request queue: uncached memory guarded by a
	// lock, because any processor may submit.
	queueAddr machine.Addr
	queueLock *locks.SpinLock
	queue     []*Request

	requests map[uint32]*Request
	nextID   uint32

	// busyUntil is the disk head's virtual time.
	busyUntil int64

	Submitted, Completed int64
	IdleStarts           int64
}

// Install creates the disk server. home is the processor that owns the
// device (interrupts arrive there).
func Install(k *core.Kernel, home int) (*Disk, error) {
	d := &Disk{
		k:        k,
		home:     home,
		requests: make(map[uint32]*Request),
		nextID:   1,
	}
	d.queueAddr = k.Layout().AllocAligned(home, 64)
	d.queueLock = locks.NewSpinLock("diskq", d.queueAddr)
	d.driver = k.Procs().New("disk.driver", 0, k.VM().KernelSpace(), home)
	d.driver.SetState(proc.StateBlocked)
	svc, err := k.BindService(core.ServiceConfig{
		Name:          ServiceName,
		Server:        k.KernelServer(),
		Handler:       d.handle,
		HandlerInstrs: diskServiceInstrs,
	})
	if err != nil {
		return nil, err
	}
	d.svc = svc
	return d, nil
}

// Service returns the bound service.
func (d *Disk) Service() *core.Service { return d.svc }

// EP returns the disk service entry point.
func (d *Disk) EP() core.EntryPointID { return d.svc.EP() }

// Home returns the device-owning processor.
func (d *Disk) Home() int { return d.home }

// RegisterName registers the disk with the name server.
func (d *Disk) RegisterName(c *core.Client) error {
	return nameserver.Register(c, ServiceName, d.svc.EP())
}

func (d *Disk) handle(ctx *core.Ctx, args *core.Args) {
	ctx.Exec(diskServiceInstrs)
	switch core.Op(args[core.OpFlagsWord]) {
	case OpSubmit:
		d.submit(ctx, args)
	case OpCompletion:
		d.complete(ctx, args)
	case OpStatus:
		d.status(ctx, args)
	default:
		args.SetRC(core.RCBadRequest)
	}
}

// submit appends the request to the shared disk queue (the §4.3 shared
// queue: uncached, locked) and starts the disk if idle.
func (d *Disk) submit(ctx *core.Ctx, args *core.Args) {
	p := ctx.P()
	req := &Request{
		ID:     d.nextID,
		Block:  args[0],
		Write:  args[1] != 0,
		Issuer: ctx.CallerProgram,
	}
	d.nextID++

	d.queueLock.Acquire(p)
	p.Access(d.queueAddr+16, 16, machine.SharedStore) // queue append
	d.queue = append(d.queue, req)
	d.requests[req.ID] = req
	idle := p.Now() >= d.busyUntil
	if idle {
		// Idle disk: additionally the device driver process is put on
		// the ready queue of the device's home processor (paper §4.3).
		d.IdleStarts++
		d.busyUntil = p.Now()
		if d.driver.State() == proc.StateBlocked {
			d.k.Sched().RemoteEnqueue(p, d.home, d.driver)
		}
	}
	d.queueLock.Release(p)

	// The head works through the queue in order, one block time each.
	d.busyUntil += BlockTimeCycles
	req.DoneAt = d.busyUntil
	req.started = true
	d.Submitted++

	args[0] = req.ID
	args.SetRC(core.RCOK)
}

// complete marks a request finished; invoked via interrupt dispatch.
func (d *Disk) complete(ctx *core.Ctx, args *core.Args) {
	req, ok := d.requests[args[0]]
	if !ok || !req.started {
		args.SetRC(core.RCBadRequest)
		return
	}
	p := ctx.P()
	d.queueLock.Acquire(p)
	p.Access(d.queueAddr+16, 8, machine.SharedStore) // dequeue
	for i, q := range d.queue {
		if q == req {
			copy(d.queue[i:], d.queue[i+1:])
			d.queue = d.queue[:len(d.queue)-1]
			break
		}
	}
	d.queueLock.Release(p)
	req.Done = true
	d.Completed++
	// An empty queue puts the driver back to sleep until the next
	// idle start.
	if len(d.queue) == 0 {
		d.driver.SetState(proc.StateBlocked)
	}
	args.SetRC(core.RCOK)
}

// Driver exposes the device driver process (tests).
func (d *Disk) Driver() *proc.Process { return d.driver }

func (d *Disk) status(ctx *core.Ctx, args *core.Args) {
	req, ok := d.requests[args[0]]
	if !ok {
		args.SetRC(core.RCBadRequest)
		return
	}
	args[1] = 0
	if req.Done {
		args[1] = 1
	}
	args.SetRC(core.RCOK)
}

// Submit issues a disk request. Submissions from processors other than
// the device's home go through the cross-processor PPC path.
func Submit(k *core.Kernel, d *Disk, c *core.Client, block uint32, write bool) (uint32, error) {
	var args core.Args
	args[0] = block
	if write {
		args[1] = 1
	}
	args.SetOp(OpSubmit, 0)
	var err error
	if c.P().ID() == d.home {
		err = c.Call(d.EP(), &args)
	} else {
		err = k.CrossCall(c.P().ID(), d.home, d.EP(), &args)
	}
	if err != nil {
		return 0, err
	}
	if rc := args.RC(); rc != core.RCOK {
		return 0, fmt.Errorf("devserver: submit: %s", core.RCString(rc))
	}
	return args[0], nil
}

// RaiseCompletion simulates the device raising its completion interrupt
// for request id: the home processor's clock is advanced to the
// request's completion time and the interrupt is dispatched as an
// asynchronous PPC to the device service (paper §4.4).
func (d *Disk) RaiseCompletion(id uint32) error {
	req, ok := d.requests[id]
	if !ok {
		return fmt.Errorf("devserver: unknown request %d", id)
	}
	p := d.k.Machine().Proc(d.home)
	p.AdvanceTo(req.DoneAt)
	var args core.Args
	args[0] = id
	args.SetOp(OpCompletion, 0)
	if err := d.k.DispatchInterrupt(d.home, d.EP(), &args, d.k.Sched().Current(p)); err != nil {
		return err
	}
	if rc := args.RC(); rc != core.RCOK {
		return fmt.Errorf("devserver: completion: %s", core.RCString(rc))
	}
	return nil
}
