package devserver

import (
	"testing"

	"hurricane/internal/core"
	"hurricane/internal/machine"
	"hurricane/internal/proc"
)

func TestIdleStartWakesDriver(t *testing.T) {
	k, d := setup(t, 1, 0)
	c := k.NewClientProgram("client", 0)
	if d.Driver().State() != proc.StateBlocked {
		t.Fatal("driver should start blocked")
	}
	if _, err := Submit(k, d, c, 5, false); err != nil {
		t.Fatal(err)
	}
	// Idle start put the driver on the home processor's ready queue.
	if d.Driver().State() != proc.StateReady {
		t.Fatalf("driver state = %v after idle start", d.Driver().State())
	}
	// A second submission to the now-busy disk does not requeue it.
	enqueues := k.Sched().Enqueues
	if _, err := Submit(k, d, c, 6, false); err != nil {
		t.Fatal(err)
	}
	if k.Sched().Enqueues != enqueues {
		t.Fatal("busy-disk submission should not requeue the driver")
	}
}

func TestDriverReblocksWhenQueueDrains(t *testing.T) {
	k, d := setup(t, 1, 0)
	c := k.NewClientProgram("client", 0)
	id, err := Submit(k, d, c, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RaiseCompletion(id); err != nil {
		t.Fatal(err)
	}
	// After the drain the driver is either parked (blocked) or was
	// handed the CPU by the completion's resume path (running); it must
	// not be left queued as ready work.
	if st := d.Driver().State(); st == proc.StateReady {
		t.Fatalf("driver left on the ready queue after drain (state %v)", st)
	}
	// The machine is consistent for further work.
	var args core.Args
	args[0] = id
	args.SetOp(OpStatus, 0)
	if err := c.Call(d.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if k.Machine().Proc(0).Mode() != machine.ModeUser {
		t.Fatal("trap imbalance")
	}
}
