package fileserver

import (
	"fmt"

	"hurricane/internal/core"
	"hurricane/internal/machine"
)

// Bulk data transfer (paper §4.2): the 8-word register interface cannot
// carry file contents, so a client grants Bob access to a region of its
// address space (through the CopyServer) and issues ReadBulk/WriteBulk
// requests; Bob, acting as a client of the CopyServer, moves the bytes
// with CopyTo/CopyFrom — "the actual transfer of data is done by a
// separate CopyTo or CopyFrom request".

// Bulk opcodes.
const (
	// OpReadBulk reads args[2] bytes at offset args[1] of file args[0]
	// into the caller's granted buffer: args[3] = grant ID, args[4] =
	// destination VA inside the grant.
	OpReadBulk uint16 = 7
	// OpWriteBulk writes args[2] bytes at offset args[1] of file
	// args[0] from the caller's granted buffer (args[3] = grant,
	// args[4] = source VA).
	OpWriteBulk uint16 = 8
)

// CopyServer opcodes Bob uses as a client (mirrors the copyserver
// package; duplicated to avoid an import cycle: copyserver does not
// know about Bob, and Bob only needs the wire protocol).
const (
	copyOpFrom uint16 = 3
	copyOpTo   uint16 = 4
)

// copyServerEP is discovered lazily through the name server-visible
// kernel table; Bob caches it after SetCopyServer.
func (b *Bob) SetCopyServer(ep core.EntryPointID) { b.copyEP = ep }

// bulkStaging is the offset within the worker stack used to stage bulk
// chunks (the top of the stack page serves as the transfer buffer —
// another use of the recycled stack).
const bulkChunk = 1024

func (b *Bob) readBulk(ctx *core.Ctx, args *core.Args) {
	f := b.lookup(ctx, args[0])
	if f == nil || b.copyEP == 0 {
		args.SetRC(core.RCBadRequest)
		return
	}
	off, size := int(args[1]), int(args[2])
	grant, dstVA := args[3], args[4]
	if size < 0 || off < 0 {
		args.SetRC(core.RCBadRequest)
		return
	}

	p := ctx.P()
	f.lock.Acquire(p)
	ctx.Exec(criticalInstrs)
	p.Access(f.record, recordReadWords*4, machine.SharedLoad)
	if off > len(f.data) {
		off = len(f.data)
	}
	if off+size > len(f.data) {
		size = len(f.data) - off
	}
	// Stage through the worker stack in chunks and push each chunk to
	// the caller's granted region via CopyTo.
	moved := 0
	var copyErr error
	for moved < size {
		n := size - moved
		if n > bulkChunk {
			n = bulkChunk
		}
		// Read file bytes into the stack staging area.
		ctx.Stack(0, n, machine.Store)
		var req core.Args
		req[0] = grant
		req[1] = dstVA + uint32(moved)
		req[2] = uint32(n)
		req[3] = uint32(ctx.Worker().StackVA())
		req.SetOp(copyOpTo, 0)
		if copyErr = ctx.Call(b.copyEP, &req); copyErr != nil || req.RC() != core.RCOK {
			break
		}
		moved += n
	}
	f.lock.Release(p)
	b.Reads++
	if copyErr != nil || moved != size {
		args.SetRC(core.RCPermissionDenied)
		return
	}
	args[1] = uint32(moved)
	args.SetRC(core.RCOK)
	// Host-side data motion mirrors the simulated one.
	_ = f.data[off : off+size]
}

func (b *Bob) writeBulk(ctx *core.Ctx, args *core.Args) {
	f := b.lookup(ctx, args[0])
	if f == nil || b.copyEP == 0 {
		args.SetRC(core.RCBadRequest)
		return
	}
	off, size := int(args[1]), int(args[2])
	grant, srcVA := args[3], args[4]
	if size < 0 || off < 0 {
		args.SetRC(core.RCBadRequest)
		return
	}

	p := ctx.P()
	f.lock.Acquire(p)
	ctx.Exec(criticalInstrs)
	p.Access(f.record, recordReadWords*4, machine.SharedLoad)
	p.Access(f.record, (recordWriteWords+1)*4, machine.SharedStore)
	moved := 0
	var copyErr error
	for moved < size {
		n := size - moved
		if n > bulkChunk {
			n = bulkChunk
		}
		var req core.Args
		req[0] = grant
		req[1] = srcVA + uint32(moved)
		req[2] = uint32(n)
		req[3] = uint32(ctx.Worker().StackVA())
		req.SetOp(copyOpFrom, 0)
		if copyErr = ctx.Call(b.copyEP, &req); copyErr != nil || req.RC() != core.RCOK {
			break
		}
		// Write staged bytes into the file body.
		ctx.Stack(0, n, machine.Load)
		moved += n
	}
	if copyErr == nil && moved == size {
		if need := off + size; need > len(f.data) {
			f.data = append(f.data, make([]byte, need-len(f.data))...)
		}
		if uint32(off+size) > f.length {
			f.length = uint32(off + size)
		}
	}
	f.lock.Release(p)
	b.Writes++
	if copyErr != nil || moved != size {
		args.SetRC(core.RCPermissionDenied)
		return
	}
	args[1] = uint32(moved)
	args.SetRC(core.RCOK)
}

// ReadBulk issues an OpReadBulk from client c: size bytes at offset of
// the file behind token, delivered into [dstVA, dstVA+size) of the
// region previously granted to Bob under grantID.
func ReadBulk(c *core.Client, ep core.EntryPointID, token uint32, offset, size uint32, grantID uint32, dstVA machine.Addr) (uint32, error) {
	var args core.Args
	args[0], args[1], args[2], args[3], args[4] = token, offset, size, grantID, uint32(dstVA)
	args.SetOp(OpReadBulk, 0)
	if err := c.Call(ep, &args); err != nil {
		return 0, err
	}
	if rc := args.RC(); rc != core.RCOK {
		return 0, fmt.Errorf("fileserver: readbulk: %s", core.RCString(rc))
	}
	return args[1], nil
}

// WriteBulk issues an OpWriteBulk from client c.
func WriteBulk(c *core.Client, ep core.EntryPointID, token uint32, offset, size uint32, grantID uint32, srcVA machine.Addr) (uint32, error) {
	var args core.Args
	args[0], args[1], args[2], args[3], args[4] = token, offset, size, grantID, uint32(srcVA)
	args.SetOp(OpWriteBulk, 0)
	if err := c.Call(ep, &args); err != nil {
		return 0, err
	}
	if rc := args.RC(); rc != core.RCOK {
		return 0, fmt.Errorf("fileserver: writebulk: %s", core.RCString(rc))
	}
	return args[1], nil
}
