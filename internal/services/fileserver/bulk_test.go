package fileserver

import (
	"testing"

	"hurricane/internal/addrspace"
	"hurricane/internal/core"
	"hurricane/internal/machine"
	"hurricane/internal/services/copyserver"
)

// bulkEnv wires Bob to a CopyServer and gives the client a granted
// buffer.
type bulkEnv struct {
	k      *core.Kernel
	bob    *Bob
	cs     *copyserver.CopyServer
	client *core.Client
	bufVA  machine.Addr
	grant  uint32
	tok    uint32
}

func setupBulk(t *testing.T) *bulkEnv {
	t.Helper()
	k := core.NewKernel(machine.MustNew(2, machine.DefaultParams()))
	cs, err := copyserver.Install(k)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := Install(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	bob.SetCopyServer(cs.EP())

	client := k.NewClientProgram("client", 0)
	bufVA := machine.Addr(0x00400000)
	ps := k.Layout().PageSize()
	for i := 0; i < 2; i++ {
		frame := k.Layout().GetFrame(0)
		k.VM().Map(client.P(), client.Process().Space(), bufVA+machine.Addr(i*ps), frame, addrspace.RW)
	}
	// Grant Bob (the server program) read+write on the buffer.
	grant, err := copyserver.Grant(client, cs.EP(), bob.Service().Server().ProgramID(), bufVA, uint32(2*ps), 3)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := Open(client, bob.EP(), "blob", true)
	if err != nil {
		t.Fatal(err)
	}
	return &bulkEnv{k: k, bob: bob, cs: cs, client: client, bufVA: bufVA, grant: grant, tok: tok}
}

func TestWriteBulkThenReadBulk(t *testing.T) {
	e := setupBulk(t)
	// Write 3000 bytes from the granted buffer into the file.
	n, err := WriteBulk(e.client, e.bob.EP(), e.tok, 0, 3000, e.grant, e.bufVA)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3000 {
		t.Fatalf("wrote %d", n)
	}
	length, err := GetLength(e.client, e.bob.EP(), e.tok)
	if err != nil {
		t.Fatal(err)
	}
	if length != 3000 {
		t.Fatalf("length = %d", length)
	}
	// Read 2048 back into the second half of the buffer.
	n, err = ReadBulk(e.client, e.bob.EP(), e.tok, 0, 2048, e.grant, e.bufVA+4096)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2048 {
		t.Fatalf("read %d", n)
	}
	// The transfers went through the CopyServer in 1 KB chunks.
	if e.cs.Copies != 3+2 {
		t.Fatalf("CopyServer.Copies = %d, want 5", e.cs.Copies)
	}
	if e.cs.BytesCopied != 3000+2048 {
		t.Fatalf("BytesCopied = %d", e.cs.BytesCopied)
	}
}

func TestReadBulkTruncatesAtEOF(t *testing.T) {
	e := setupBulk(t)
	if _, err := WriteBulk(e.client, e.bob.EP(), e.tok, 0, 100, e.grant, e.bufVA); err != nil {
		t.Fatal(err)
	}
	n, err := ReadBulk(e.client, e.bob.EP(), e.tok, 40, 500, e.grant, e.bufVA)
	if err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Fatalf("read %d past EOF, want 60", n)
	}
}

func TestBulkWithoutCopyServerRejected(t *testing.T) {
	k := core.NewKernel(machine.MustNew(1, machine.DefaultParams()))
	bob, err := Install(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := k.NewClientProgram("client", 0)
	tok, err := Open(c, bob.EP(), "f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBulk(c, bob.EP(), tok, 0, 64, 1, 0x00400000); err == nil {
		t.Fatal("bulk op accepted without a CopyServer")
	}
}

func TestBulkHonorsGrant(t *testing.T) {
	e := setupBulk(t)
	if _, err := WriteBulk(e.client, e.bob.EP(), e.tok, 0, 128, e.grant, e.bufVA); err != nil {
		t.Fatal(err)
	}
	// A bogus grant ID fails cleanly (Bob's CopyTo is rejected by the
	// CopyServer's permission check).
	if _, err := ReadBulk(e.client, e.bob.EP(), e.tok, 0, 64, 9999, e.bufVA); err == nil {
		t.Fatal("bulk read with bogus grant succeeded")
	}
	// Writes with a bogus grant fail too (CopyFrom rejected).
	if _, err := WriteBulk(e.client, e.bob.EP(), e.tok, 0, 64, 9999, e.bufVA); err == nil {
		t.Fatal("bulk write with bogus grant succeeded")
	}
}

func TestBulkCostScalesWithSize(t *testing.T) {
	e := setupBulk(t)
	if _, err := WriteBulk(e.client, e.bob.EP(), e.tok, 0, 8000, e.grant, e.bufVA); err != nil {
		t.Fatal(err)
	}
	cost := func(size uint32) int64 {
		p := e.client.P()
		before := p.Now()
		if _, err := ReadBulk(e.client, e.bob.EP(), e.tok, 0, size, e.grant, e.bufVA); err != nil {
			t.Fatal(err)
		}
		return p.Now() - before
	}
	small := cost(256)
	large := cost(4096)
	if large <= small {
		t.Fatalf("4 KB bulk read (%d cy) should cost more than 256 B (%d cy)", large, small)
	}
}
