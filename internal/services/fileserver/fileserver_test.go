package fileserver

import (
	"testing"

	"hurricane/internal/core"
	"hurricane/internal/machine"
	"hurricane/internal/services/nameserver"
)

func setup(t *testing.T, procs int) (*core.Kernel, *Bob, *core.Client) {
	t.Helper()
	k := core.NewKernel(machine.MustNew(procs, machine.DefaultParams()))
	if _, err := nameserver.Install(k, 0); err != nil {
		t.Fatal(err)
	}
	b, err := Install(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	return k, b, k.NewClientProgram("client", 0)
}

func TestOpenCreateAndGetLength(t *testing.T) {
	_, b, c := setup(t, 1)
	tok, err := Open(c, b.EP(), "readme", true)
	if err != nil {
		t.Fatal(err)
	}
	n, err := GetLength(c, b.EP(), tok)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("fresh file length = %d", n)
	}
	if err := SetLength(c, b.EP(), tok, 4096); err != nil {
		t.Fatal(err)
	}
	n, err = GetLength(c, b.EP(), tok)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4096 {
		t.Fatalf("length = %d, want 4096", n)
	}
}

func TestOpenWithoutCreateFails(t *testing.T) {
	_, b, c := setup(t, 1)
	if _, err := Open(c, b.EP(), "ghost", false); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}

func TestOpenExistingSharesToken(t *testing.T) {
	k, b, c := setup(t, 2)
	tok1, err := Open(c, b.EP(), "shared", true)
	if err != nil {
		t.Fatal(err)
	}
	c2 := k.NewClientProgram("client2", 1)
	tok2, err := Open(c2, b.EP(), "shared", false)
	if err != nil {
		t.Fatal(err)
	}
	if tok1 != tok2 {
		t.Fatalf("same file, different tokens: %d vs %d", tok1, tok2)
	}
}

func TestGetLengthBadToken(t *testing.T) {
	_, b, c := setup(t, 1)
	if _, err := GetLength(c, b.EP(), 999); err == nil {
		t.Fatal("bad token accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	_, b, c := setup(t, 1)
	tok, err := Open(c, b.EP(), "data", true)
	if err != nil {
		t.Fatal(err)
	}

	var args core.Args
	args[0], args[1] = tok, 0
	copy16 := func(s string) {
		var buf [16]byte
		copy(buf[:], s)
		for i := 0; i < 4; i++ {
			args[2+i] = uint32(buf[4*i]) | uint32(buf[4*i+1])<<8 | uint32(buf[4*i+2])<<16 | uint32(buf[4*i+3])<<24
		}
	}
	copy16("hello, hurricane")
	args.SetOp(OpWrite, 0)
	if err := c.Call(b.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args.RC() != core.RCOK {
		t.Fatalf("write rc = %s", core.RCString(args.RC()))
	}

	args = core.Args{}
	args[0], args[1] = tok, 0
	args.SetOp(OpRead, 0)
	if err := c.Call(b.EP(), &args); err != nil {
		t.Fatal(err)
	}
	if args.RC() != core.RCOK || args[1] != 16 {
		t.Fatalf("read rc=%s n=%d", core.RCString(args.RC()), args[1])
	}
	var got [16]byte
	for i := 0; i < 4; i++ {
		w := args[2+i]
		got[4*i], got[4*i+1], got[4*i+2], got[4*i+3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
	}
	if string(got[:]) != "hello, hurricane" {
		t.Fatalf("read back %q", got)
	}

	n, err := GetLength(c, b.EP(), tok)
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Fatalf("length after write = %d", n)
	}
}

func TestNameServerDiscovery(t *testing.T) {
	_, b, c := setup(t, 1)
	if err := b.RegisterName(c); err != nil {
		t.Fatal(err)
	}
	ep, err := nameserver.Lookup(c, ServiceName)
	if err != nil {
		t.Fatal(err)
	}
	if ep != b.EP() {
		t.Fatalf("lookup = %d, want %d", ep, b.EP())
	}
}

func TestFileRecordHomedOnOpeningNode(t *testing.T) {
	k, b, _ := setup(t, 4)
	c2 := k.NewClientProgram("c2", 2)
	if _, err := Open(c2, b.EP(), "mine", true); err != nil {
		t.Fatal(err)
	}
	f := b.byName["mine"]
	if f.record.Home() != 2 {
		t.Fatalf("record homed on node %d, want 2 (first touch)", f.record.Home())
	}
}

func TestGetLengthSequentialCostNearPaper(t *testing.T) {
	// The paper's base: a sequential GetLength costs ~66 us, with half
	// in the IPC facility and half in the file server.
	_, b, c := setup(t, 1)
	tok, err := Open(c, b.EP(), "f", true)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up.
	for i := 0; i < 4; i++ {
		if _, err := GetLength(c, b.EP(), tok); err != nil {
			t.Fatal(err)
		}
	}
	p := c.P()
	before := p.Now()
	if _, err := GetLength(c, b.EP(), tok); err != nil {
		t.Fatal(err)
	}
	us := p.Params().CyclesToMicros(p.Now() - before)
	if us < 50 || us > 85 {
		t.Fatalf("sequential GetLength = %.1f us, want ~66 (band [50,85])", us)
	}
}

func TestGetLengthServerShareOfCost(t *testing.T) {
	_, b, c := setup(t, 1)
	tok, err := Open(c, b.EP(), "f", true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := GetLength(c, b.EP(), tok); err != nil {
			t.Fatal(err)
		}
	}
	p := c.P()
	p.ResetAccount()
	before := p.Now()
	if _, err := GetLength(c, b.EP(), tok); err != nil {
		t.Fatal(err)
	}
	total := p.Now() - before
	server := p.Account()[machine.CatServerTime]
	frac := float64(server) / float64(total)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("server share = %.0f%%, want ~half", frac*100)
	}
}

func TestConcurrentGetLengthDifferentFilesStaysUncontended(t *testing.T) {
	k, b, _ := setup(t, 4)
	for i := 0; i < 4; i++ {
		c := k.NewClientProgram("c", i)
		tok, err := Open(c, b.EP(), "file"+string(rune('0'+i)), true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := GetLength(c, b.EP(), tok); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range b.files {
		if f.lock.Contentions != 0 {
			t.Fatalf("file %s lock contended %d times", f.name, f.lock.Contentions)
		}
	}
}
