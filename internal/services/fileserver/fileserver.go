// Package fileserver implements "Bob", the Hurricane file server used
// in the paper's throughput experiment (Figure 3). Clients obtain a
// token for an open file and issue GetLength requests against it; the
// base sequential cost is about 66 us, roughly half attributable to the
// IPC facility and half to the file server itself.
//
// File metadata is mutable (length, access time) and may be updated by
// workers running on any processor; on the coherence-free Hector it
// therefore lives in uncached memory guarded by a per-file spin lock.
// Each file's record is homed on the node that opened it (first touch),
// so independent clients working on different files stay local and
// uncontended — the linear curve of Figure 3 — while all clients
// hammering one file serialize on its lock and saturate — the dashed
// curve.
package fileserver

import (
	"fmt"

	"hurricane/internal/core"
	"hurricane/internal/locks"
	"hurricane/internal/machine"
	"hurricane/internal/services/nameserver"
)

// File server opcodes.
const (
	// OpOpen opens (or with FlagCreate creates) the file named in
	// args[0..2]; the token comes back in args[0].
	OpOpen uint16 = 1
	// OpGetLength returns the length of the file in args[0] into
	// args[1] — the operation of Figure 3.
	OpGetLength uint16 = 2
	// OpSetLength truncates/extends the file in args[0] to args[1].
	OpSetLength uint16 = 3
	// OpRead reads up to 16 bytes at offset args[1] of file args[0]
	// into args[2..5] (register-only transfer; bulk data goes through
	// the CopyServer).
	OpRead uint16 = 4
	// OpWrite writes up to 16 bytes from args[2..5] at offset args[1].
	OpWrite uint16 = 5
	// OpClose closes the token in args[0].
	OpClose uint16 = 6
)

// FlagCreate makes OpOpen create the file if it does not exist.
const FlagCreate uint16 = 1

// ServiceName is the name Bob registers with the name server.
const ServiceName = "bob"

// Calibration of the simulated server work, chosen so that the
// sequential GetLength costs ~33 us of server time (half the paper's
// 66 us base) and the locked critical section is ~16 us — which is what
// makes the single-file curve saturate at four processors, as in the
// paper.
const (
	// handlerInstrs is the instruction footprint charged by the PPC
	// facility for every request (dispatch, token validation).
	handlerInstrs = 135
	// lookupInstrs is charged for the open-file table probe.
	lookupInstrs = 80
	// criticalInstrs is executed while holding the file lock.
	criticalInstrs = 100
	// recordReadWords / recordWriteWords are the uncached metadata
	// accesses inside the critical section (inode fields, access-time
	// update).
	recordReadWords  = 12
	recordWriteWords = 3
	// recordSize is the simulated size of a file metadata record.
	recordSize = 64
)

// file is one open file.
type file struct {
	token  uint32
	name   string
	length uint32
	data   []byte

	record machine.Addr
	lock   *locks.SpinLock
	opens  int
}

// Bob is the file server instance.
type Bob struct {
	k    *core.Kernel
	prog *core.Server
	svc  *core.Service

	// table is the open-file directory in the server's data region:
	// read-mostly, cacheable.
	table machine.Addr

	files     map[uint32]*file
	byName    map[string]*file
	nextToken uint32

	// copyEP is the CopyServer entry point for bulk transfers (§4.2);
	// set via SetCopyServer.
	copyEP core.EntryPointID

	// Stats.
	Opens, GetLengths, Reads, Writes int64
}

// Install creates Bob on the given node, binds his service, and
// registers it with the name server if one is installed.
func Install(k *core.Kernel, node int) (*Bob, error) {
	prog := k.NewServerProgram("bob", node)
	b := &Bob{
		k:         k,
		prog:      prog,
		files:     make(map[uint32]*file),
		byName:    make(map[string]*file),
		nextToken: 1,
	}
	b.table = k.MapServerData(prog, 2)
	svc, err := k.BindService(core.ServiceConfig{
		Name:          ServiceName,
		Server:        prog,
		Handler:       b.handle,
		HandlerInstrs: handlerInstrs,
	})
	if err != nil {
		return nil, err
	}
	b.svc = svc
	return b, nil
}

// Service returns Bob's bound service.
func (b *Bob) Service() *core.Service { return b.svc }

// FileLock returns the metadata lock of the named file, or nil if the
// file does not exist. Exposed for contention diagnostics — the
// single-file saturation of Figure 3 is this lock's doing.
func (b *Bob) FileLock(name string) *locks.SpinLock {
	f, ok := b.byName[name]
	if !ok {
		return nil
	}
	return f.lock
}

// EP returns Bob's entry point.
func (b *Bob) EP() core.EntryPointID { return b.svc.EP() }

// RegisterName registers Bob with the name server via a PPC call from
// client c.
func (b *Bob) RegisterName(c *core.Client) error {
	return nameserver.Register(c, ServiceName, b.svc.EP())
}

// lookup charges the open-file table probe and returns the file.
func (b *Bob) lookup(ctx *core.Ctx, token uint32) *file {
	ctx.Exec(lookupInstrs)
	ctx.Access(b.table+machine.Addr((token%512)*8), 8, machine.Load)
	return b.files[token]
}

// handle services Bob's requests.
func (b *Bob) handle(ctx *core.Ctx, args *core.Args) {
	switch core.Op(args[core.OpFlagsWord]) {
	case OpOpen:
		b.open(ctx, args)
	case OpGetLength:
		b.getLength(ctx, args)
	case OpSetLength:
		b.setLength(ctx, args)
	case OpRead:
		b.read(ctx, args)
	case OpWrite:
		b.write(ctx, args)
	case OpClose:
		b.close(ctx, args)
	case OpReadBulk:
		b.readBulk(ctx, args)
	case OpWriteBulk:
		b.writeBulk(ctx, args)
	default:
		args.SetRC(core.RCBadRequest)
	}
}

func (b *Bob) open(ctx *core.Ctx, args *core.Args) {
	name := nameserver.UnpackName(args)
	flags := core.Flags(args[core.OpFlagsWord])
	ctx.Exec(lookupInstrs)
	f, ok := b.byName[name]
	if !ok {
		if flags&FlagCreate == 0 {
			args.SetRC(core.RCBadRequest)
			return
		}
		// First touch: the metadata record is homed on the opening
		// processor's node, so the common client stays local.
		node := ctx.P().ID()
		record := b.k.Layout().AllocKernel(node, recordSize, recordSize)
		f = &file{
			token:  b.nextToken,
			name:   name,
			record: record,
			lock:   locks.NewSpinLock("file."+name, record),
		}
		b.nextToken++
		b.files[f.token] = f
		b.byName[name] = f
		ctx.Access(b.table+machine.Addr((f.token%512)*8), 8, machine.Store)
	}
	f.opens++
	b.Opens++
	args[0] = f.token
	args.SetRC(core.RCOK)
}

func (b *Bob) getLength(ctx *core.Ctx, args *core.Args) {
	f := b.lookup(ctx, args[0])
	if f == nil {
		args.SetRC(core.RCBadRequest)
		return
	}
	p := ctx.P()
	f.lock.Acquire(p)
	ctx.Exec(criticalInstrs)
	p.Access(f.record, recordReadWords*4, machine.SharedLoad)
	p.Access(f.record+recordSize-recordWriteWords*4, recordWriteWords*4, machine.SharedStore) // atime update
	length := f.length
	f.lock.Release(p)
	b.GetLengths++
	args[1] = length
	args.SetRC(core.RCOK)
}

func (b *Bob) setLength(ctx *core.Ctx, args *core.Args) {
	f := b.lookup(ctx, args[0])
	if f == nil {
		args.SetRC(core.RCBadRequest)
		return
	}
	p := ctx.P()
	f.lock.Acquire(p)
	ctx.Exec(criticalInstrs)
	p.Access(f.record, recordReadWords*4, machine.SharedLoad)
	p.Access(f.record, (recordWriteWords+1)*4, machine.SharedStore)
	f.length = args[1]
	if int(f.length) < len(f.data) {
		f.data = f.data[:f.length]
	}
	f.lock.Release(p)
	args.SetRC(core.RCOK)
}

func (b *Bob) read(ctx *core.Ctx, args *core.Args) {
	f := b.lookup(ctx, args[0])
	if f == nil {
		args.SetRC(core.RCBadRequest)
		return
	}
	off := int(args[1])
	p := ctx.P()
	f.lock.Acquire(p)
	ctx.Exec(criticalInstrs)
	p.Access(f.record, recordReadWords*4, machine.SharedLoad)
	var out [16]byte
	n := 0
	if off < len(f.data) {
		n = copy(out[:], f.data[off:])
	}
	f.lock.Release(p)
	b.Reads++
	for i := 0; i < 4; i++ {
		args[2+i] = uint32(out[4*i]) | uint32(out[4*i+1])<<8 | uint32(out[4*i+2])<<16 | uint32(out[4*i+3])<<24
	}
	args[1] = uint32(n)
	args.SetRC(core.RCOK)
}

func (b *Bob) write(ctx *core.Ctx, args *core.Args) {
	f := b.lookup(ctx, args[0])
	if f == nil {
		args.SetRC(core.RCBadRequest)
		return
	}
	off := int(args[1])
	var in [16]byte
	for i := 0; i < 4; i++ {
		w := args[2+i]
		in[4*i], in[4*i+1], in[4*i+2], in[4*i+3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
	}
	p := ctx.P()
	f.lock.Acquire(p)
	ctx.Exec(criticalInstrs)
	p.Access(f.record, recordReadWords*4, machine.SharedLoad)
	p.Access(f.record, (recordWriteWords+1)*4, machine.SharedStore)
	if need := off + 16; need > len(f.data) {
		f.data = append(f.data, make([]byte, need-len(f.data))...)
	}
	copy(f.data[off:], in[:])
	if uint32(off+16) > f.length {
		f.length = uint32(off + 16)
	}
	f.lock.Release(p)
	b.Writes++
	args.SetRC(core.RCOK)
}

func (b *Bob) close(ctx *core.Ctx, args *core.Args) {
	f := b.lookup(ctx, args[0])
	if f == nil {
		args.SetRC(core.RCBadRequest)
		return
	}
	f.opens--
	args.SetRC(core.RCOK)
}

// Open opens (creating if asked) a file via a PPC call from client c.
func Open(c *core.Client, ep core.EntryPointID, name string, create bool) (uint32, error) {
	var args core.Args
	if err := nameserver.PackName(&args, name); err != nil {
		return 0, err
	}
	var flags uint16
	if create {
		flags = FlagCreate
	}
	args.SetOp(OpOpen, flags)
	if err := c.Call(ep, &args); err != nil {
		return 0, err
	}
	if rc := args.RC(); rc != core.RCOK {
		return 0, fmt.Errorf("fileserver: open %q: %s", name, core.RCString(rc))
	}
	return args[0], nil
}

// GetLength issues the Figure 3 request via a PPC call from client c.
func GetLength(c *core.Client, ep core.EntryPointID, token uint32) (uint32, error) {
	var args core.Args
	args[0] = token
	args.SetOp(OpGetLength, 0)
	if err := c.Call(ep, &args); err != nil {
		return 0, err
	}
	if rc := args.RC(); rc != core.RCOK {
		return 0, fmt.Errorf("fileserver: getlength: %s", core.RCString(rc))
	}
	return args[1], nil
}

// SetLength sets a file's length via a PPC call from client c.
func SetLength(c *core.Client, ep core.EntryPointID, token, length uint32) error {
	var args core.Args
	args[0], args[1] = token, length
	args.SetOp(OpSetLength, 0)
	if err := c.Call(ep, &args); err != nil {
		return err
	}
	if rc := args.RC(); rc != core.RCOK {
		return fmt.Errorf("fileserver: setlength: %s", core.RCString(rc))
	}
	return nil
}
