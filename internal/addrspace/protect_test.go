package addrspace

import (
	"testing"

	"hurricane/internal/machine"
	"hurricane/internal/mem"
)

func TestProtectDowngradesAccess(t *testing.T) {
	m := machine.MustNew(1, machine.DefaultParams())
	mgr := NewManager(mem.NewLayout(m))
	p := m.Proc(0)
	as := mgr.NewSpace("user", 0)
	frame := mgr.Layout().GetFrame(0)
	va := machine.Addr(0x00400000)
	mgr.Map(p, as, va, frame, RW)
	mgr.Access(p, as, va, 4, machine.Store) // writable

	mgr.Protect(p, as, va, ProtRead)
	mgr.Access(p, as, va, 4, machine.Load) // still readable
	defer func() {
		if recover() == nil {
			t.Fatal("write after Protect(read-only) did not fault")
		}
	}()
	mgr.Access(p, as, va, 4, machine.Store)
}

func TestProtectShootsDownTLB(t *testing.T) {
	m := machine.MustNew(1, machine.DefaultParams())
	mgr := NewManager(mem.NewLayout(m))
	p := m.Proc(0)
	as := mgr.NewSpace("user", 0)
	frame := mgr.Layout().GetFrame(0)
	va := machine.Addr(0x00400000)
	ps := mgr.Layout().PageSize()
	mgr.Map(p, as, va, frame, RW)
	mgr.Access(p, as, va, 4, machine.Load)
	if !p.DTLB().Resident(machine.TLBUser, va.Page(ps)) {
		t.Fatal("translation not resident")
	}
	mgr.Protect(p, as, va, ProtRead)
	if p.DTLB().Resident(machine.TLBUser, va.Page(ps)) {
		t.Fatal("stale translation survived Protect")
	}
}

func TestProtectUnmappedPanics(t *testing.T) {
	m := machine.MustNew(1, machine.DefaultParams())
	mgr := NewManager(mem.NewLayout(m))
	as := mgr.NewSpace("user", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("protect of unmapped page did not panic")
		}
	}()
	mgr.Protect(m.Proc(0), as, 0x00400000, ProtRead)
}

func TestMapDirectEquivalence(t *testing.T) {
	// MapDirect/UnmapDirect must be semantically identical to
	// Map/Unmap, just cheaper.
	m := machine.MustNew(1, machine.DefaultParams())
	mgr := NewManager(mem.NewLayout(m))
	p := m.Proc(0)
	as := mgr.NewSpace("user", 0)
	frame := mgr.Layout().GetFrame(0)
	va := machine.Addr(0x00400000)

	mgr.MapDirect(p, as, va, frame, RW)
	pa, prot, ok := mgr.Translate(as, va+8)
	if !ok || pa != frame+8 || prot != RW {
		t.Fatalf("MapDirect translate = %#x,%v,%v", uint32(pa), prot, ok)
	}
	if as.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d", as.MappedPages())
	}

	// Warm both paths, then compare costs.
	mgr.UnmapDirect(p, as, va)
	mgr.Map(p, as, va, frame, RW)
	mgr.Unmap(p, as, va)

	before := p.Now()
	mgr.Map(p, as, va, frame, RW)
	mgr.Unmap(p, as, va)
	full := p.Now() - before

	before = p.Now()
	mgr.MapDirect(p, as, va, frame, RW)
	mgr.UnmapDirect(p, as, va)
	direct := p.Now() - before

	if direct >= full {
		t.Fatalf("direct map/unmap (%d cy) should beat the full walk (%d cy)", direct, full)
	}
}

func TestUnmapDirectUnmappedPanics(t *testing.T) {
	m := machine.MustNew(1, machine.DefaultParams())
	mgr := NewManager(mem.NewLayout(m))
	as := mgr.NewSpace("user", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("UnmapDirect of unmapped page did not panic")
		}
	}()
	mgr.UnmapDirect(m.Proc(0), as, 0x00400000)
}

func TestAlignmentPanics(t *testing.T) {
	m := machine.MustNew(1, machine.DefaultParams())
	mgr := NewManager(mem.NewLayout(m))
	p := m.Proc(0)
	as := mgr.NewSpace("user", 0)
	frame := mgr.Layout().GetFrame(0)
	for _, f := range []func(){
		func() { mgr.MapDirect(p, as, 0x00400004, frame, RW) },
		func() { mgr.UnmapDirect(p, as, 0x00400004) },
		func() { mgr.Protect(p, as, 0x00400004, ProtRead) },
		func() { mgr.Unmap(p, as, 0x00400004) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unaligned operation accepted")
				}
			}()
			f()
		}()
	}
}
