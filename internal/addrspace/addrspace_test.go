package addrspace

import (
	"testing"
	"testing/quick"

	"hurricane/internal/machine"
	"hurricane/internal/mem"
)

func setup(t *testing.T, procs int) (*machine.Machine, *Manager) {
	t.Helper()
	m := machine.MustNew(procs, machine.DefaultParams())
	return m, NewManager(mem.NewLayout(m))
}

func TestProtString(t *testing.T) {
	if RW.String() != "rw-" {
		t.Fatalf("RW = %q", RW.String())
	}
	if (ProtRead | ProtExec).String() != "r-x" {
		t.Fatalf("r-x = %q", (ProtRead | ProtExec).String())
	}
}

func TestMapTranslateUnmap(t *testing.T) {
	m, mgr := setup(t, 1)
	p := m.Proc(0)
	as := mgr.NewSpace("user", 0)
	layout := mgr.Layout()
	frame := layout.GetFrame(0)

	va := machine.Addr(0x00400000)
	mgr.Map(p, as, va, frame, RW)
	if as.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d", as.MappedPages())
	}
	pa, prot, ok := mgr.Translate(as, va+0x123)
	if !ok || pa != frame+0x123 || prot != RW {
		t.Fatalf("Translate = %#x,%v,%v", uint32(pa), prot, ok)
	}

	got := mgr.Unmap(p, as, va)
	if got != frame {
		t.Fatalf("Unmap returned %#x, want %#x", uint32(got), uint32(frame))
	}
	if _, _, ok := mgr.Translate(as, va); ok {
		t.Fatal("translation survived unmap")
	}
	layout.PutFrame(0, frame)
}

func TestUnmapUnmappedPanics(t *testing.T) {
	m, mgr := setup(t, 1)
	as := mgr.NewSpace("user", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("unmap of unmapped page did not panic")
		}
	}()
	mgr.Unmap(m.Proc(0), as, 0x00400000)
}

func TestUnalignedMapPanics(t *testing.T) {
	m, mgr := setup(t, 1)
	as := mgr.NewSpace("user", 0)
	frame := mgr.Layout().GetFrame(0)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned map did not panic")
		}
	}()
	mgr.Map(m.Proc(0), as, 0x00400004, frame, RW)
}

func TestAccessThroughMapping(t *testing.T) {
	m, mgr := setup(t, 1)
	p := m.Proc(0)
	as := mgr.NewSpace("user", 0)
	frame := mgr.Layout().GetFrame(0)
	va := machine.Addr(0x00400000)
	mgr.Map(p, as, va, frame, RW)

	mgr.Access(p, as, va+16, 8, machine.Store)
	// The physically indexed cache now holds the *frame* line.
	if !p.DCache().Contains(frame + 16) {
		t.Fatal("access did not reach the mapped frame in the cache")
	}
}

func TestAccessCrossesPages(t *testing.T) {
	m, mgr := setup(t, 1)
	p := m.Proc(0)
	as := mgr.NewSpace("user", 0)
	ps := mgr.Layout().PageSize()
	f1 := mgr.Layout().GetFrame(0)
	f2 := mgr.Layout().GetFrame(0)
	va := machine.Addr(0x00400000)
	mgr.Map(p, as, va, f1, RW)
	mgr.Map(p, as, va+machine.Addr(ps), f2, RW)

	// An access spanning the page boundary touches both frames.
	mgr.Access(p, as, va+machine.Addr(ps-4), 8, machine.Store)
	if !p.DCache().Contains(f1+machine.Addr(ps-4)) || !p.DCache().Contains(f2) {
		t.Fatal("cross-page access did not touch both frames")
	}
}

func TestAccessFaultsWithoutMapping(t *testing.T) {
	m, mgr := setup(t, 1)
	as := mgr.NewSpace("user", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("access to unmapped page did not panic")
		}
	}()
	mgr.Access(m.Proc(0), as, 0x00400000, 4, machine.Load)
}

func TestProtectionViolationFaults(t *testing.T) {
	m, mgr := setup(t, 1)
	p := m.Proc(0)
	as := mgr.NewSpace("user", 0)
	frame := mgr.Layout().GetFrame(0)
	va := machine.Addr(0x00400000)
	mgr.Map(p, as, va, frame, ProtRead)
	mgr.Access(p, as, va, 4, machine.Load) // read OK
	defer func() {
		if recover() == nil {
			t.Fatal("write to read-only page did not panic")
		}
	}()
	mgr.Access(p, as, va, 4, machine.Store)
}

func TestFaultHandlerRepairs(t *testing.T) {
	m, mgr := setup(t, 1)
	p := m.Proc(0)
	as := mgr.NewSpace("user", 0)
	va := machine.Addr(0x00400000)
	faults := 0
	as.OnFault = func(fp *machine.Processor, fas *AddressSpace, fva machine.Addr, kind machine.AccessKind) bool {
		faults++
		frame := mgr.Layout().GetFrame(0)
		page := machine.Addr(uint32(fva) &^ uint32(mgr.Layout().PageSize()-1))
		mgr.Map(fp, fas, page, frame, RW)
		return true
	}
	mgr.Access(p, as, va+8, 4, machine.Store) // demand-grows the page
	if faults != 1 {
		t.Fatalf("faults = %d, want 1", faults)
	}
	mgr.Access(p, as, va+8, 4, machine.Load) // no further fault
	if faults != 1 {
		t.Fatalf("faults = %d after second access, want 1", faults)
	}
}

func TestSwitchBetweenUserSpacesFlushesUserTLB(t *testing.T) {
	m, mgr := setup(t, 1)
	p := m.Proc(0)
	a := mgr.NewSpace("a", 0)
	b := mgr.NewSpace("b", 0)

	mgr.SwitchTo(p, a)
	if mgr.UserTLBFlushes != 0 {
		t.Fatal("first user space installation should not flush")
	}
	mgr.SwitchTo(p, b)
	if mgr.UserTLBFlushes != 1 {
		t.Fatalf("user->user switch flushes = %d, want 1", mgr.UserTLBFlushes)
	}
	// Re-entering the same space: no flush.
	mgr.SwitchTo(p, b)
	if mgr.UserTLBFlushes != 1 {
		t.Fatal("same-space switch should not flush")
	}
}

func TestKernelExcursionDoesNotFlush(t *testing.T) {
	m, mgr := setup(t, 1)
	p := m.Proc(0)
	a := mgr.NewSpace("a", 0)

	mgr.SwitchTo(p, a)
	mgr.SwitchTo(p, mgr.KernelSpace())
	mgr.SwitchTo(p, a) // back to the same user space
	if mgr.UserTLBFlushes != 0 {
		t.Fatalf("user->kernel->same-user flushed %d times, want 0", mgr.UserTLBFlushes)
	}
	if mgr.Current(p) != a {
		t.Fatal("current space wrong after excursion")
	}
}

func TestKernelExcursionToOtherUserFlushesOnce(t *testing.T) {
	m, mgr := setup(t, 1)
	p := m.Proc(0)
	a := mgr.NewSpace("a", 0)
	b := mgr.NewSpace("b", 0)
	mgr.SwitchTo(p, a)
	mgr.SwitchTo(p, mgr.KernelSpace())
	mgr.SwitchTo(p, b)
	if mgr.UserTLBFlushes != 1 {
		t.Fatalf("flushes = %d, want 1", mgr.UserTLBFlushes)
	}
}

func TestUnmapShootsDownTLBEntry(t *testing.T) {
	m, mgr := setup(t, 1)
	p := m.Proc(0)
	as := mgr.NewSpace("user", 0)
	frame := mgr.Layout().GetFrame(0)
	va := machine.Addr(0x00400000)
	ps := mgr.Layout().PageSize()
	mgr.Map(p, as, va, frame, RW)
	mgr.Access(p, as, va, 4, machine.Load)
	vpn := va.Page(ps)
	if !p.DTLB().Resident(machine.TLBUser, vpn) {
		t.Fatal("translation not resident after access")
	}
	mgr.Unmap(p, as, va)
	if p.DTLB().Resident(machine.TLBUser, vpn) {
		t.Fatal("translation survived unmap shootdown")
	}
}

// Property: Translate is consistent with the sequence of Map/Unmap
// operations for arbitrary page sets.
func TestTranslateConsistencyProperty(t *testing.T) {
	m, mgr := setup(t, 1)
	p := m.Proc(0)
	as := mgr.NewSpace("user", 0)
	ps := mgr.Layout().PageSize()
	mapped := make(map[uint32]machine.Addr)

	f := func(pages []uint8) bool { // <=256 distinct pages: bounds frame usage
		for _, pg := range pages {
			va := machine.Addr(uint32(pg)) * machine.Addr(ps)
			if fr, ok := mapped[uint32(pg)]; ok {
				if got := mgr.Unmap(p, as, va); got != fr {
					return false
				}
				mgr.Layout().PutFrame(0, fr)
				delete(mapped, uint32(pg))
			} else {
				fr := mgr.Layout().GetFrame(0)
				mgr.Map(p, as, va, fr, RW)
				mapped[uint32(pg)] = fr
			}
			// Every mapped page translates; this page's state is fresh.
			pa, _, ok := mgr.Translate(as, va)
			if _, want := mapped[uint32(pg)]; want {
				if !ok || pa != mapped[uint32(pg)] {
					return false
				}
			} else if ok {
				return false
			}
		}
		return as.MappedPages() == len(mapped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
