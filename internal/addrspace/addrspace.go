// Package addrspace implements simulated address spaces for the
// Hurricane kernel model: two-level page tables in simulated kernel
// memory, map/unmap/protect operations that charge page-table walks and
// TLB maintenance, and address-space switching with the dual-context TLB
// semantics of the M88200 (switching between two *user* spaces flushes
// the user TLB context; entering the kernel does not).
//
//ppc:boundary -- simulated MMU/page tables: costs are charged through the machine model, not host code
package addrspace

import (
	"fmt"

	"hurricane/internal/machine"
	"hurricane/internal/mem"
)

// Prot is a page protection bit set.
type Prot uint8

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// RW is the common read-write protection.
const RW = ProtRead | ProtWrite

func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// allows reports whether the protection permits the access kind.
func (p Prot) allows(kind machine.AccessKind) bool {
	if kind.IsWrite() {
		return p&ProtWrite != 0
	}
	return p&ProtRead != 0
}

// PTE is a page-table entry.
type PTE struct {
	Frame machine.Addr
	Prot  Prot
	Valid bool
}

const (
	leafEntries  = 1024
	pteSizeBytes = 4 // one word per PTE, as on the 88200 tables
)

type leafTable struct {
	base    machine.Addr // simulated address of the table
	entries map[uint32]PTE
}

// AddressSpace is one protection domain.
type AddressSpace struct {
	id     int
	name   string
	kernel bool
	node   int // home node of the page tables

	rootBase machine.Addr
	leaves   map[uint32]*leafTable

	// OnFault, when non-nil, is invoked on an access to an unmapped or
	// protection-violating page; returning true means the fault was
	// repaired (e.g. a stack page was grown, paper §4.5.4) and the
	// access retries once.
	OnFault func(p *machine.Processor, as *AddressSpace, va machine.Addr, kind machine.AccessKind) bool

	mappedPages int
}

// ID returns the space identifier.
func (as *AddressSpace) ID() int { return as.id }

// Name returns the diagnostic name.
func (as *AddressSpace) Name() string { return as.name }

// IsKernel reports whether this is the supervisor address space.
func (as *AddressSpace) IsKernel() bool { return as.kernel }

// MappedPages returns the number of valid mappings.
func (as *AddressSpace) MappedPages() int { return as.mappedPages }

// Manager owns all address spaces of one machine, the per-processor
// current-space registers, and the simulated code for the mapping
// primitives.
type Manager struct {
	layout *mem.Layout
	nextID int

	kernelSpace *AddressSpace
	current     []*AddressSpace
	// userOwner tracks, per processor, which user space's translations
	// occupy the user TLB context. Entering the kernel does not change
	// it; installing a *different* user space requires a flush.
	userOwner []*AddressSpace

	segMap    *machine.CodeSeg
	segUnmap  *machine.CodeSeg
	segSwitch *machine.CodeSeg

	// Statistics.
	Maps, Unmaps, Switches, UserTLBFlushes int64
}

// NewManager creates the manager and the kernel address space; every
// processor starts in the kernel space.
func NewManager(layout *mem.Layout) *Manager {
	m := layout.Machine()
	mgr := &Manager{
		layout:    layout,
		current:   make([]*AddressSpace, m.NumProcs()),
		userOwner: make([]*AddressSpace, m.NumProcs()),
		segMap:    m.NewCodeSeg("vm.map", 12),
		segUnmap:  m.NewCodeSeg("vm.unmap", 10),
		segSwitch: m.NewCodeSeg("vm.switch", 10),
	}
	mgr.kernelSpace = mgr.NewSpace("kernel", 0)
	mgr.kernelSpace.kernel = true
	for i := range mgr.current {
		mgr.current[i] = mgr.kernelSpace
	}
	return mgr
}

// KernelSpace returns the supervisor address space.
func (mgr *Manager) KernelSpace() *AddressSpace { return mgr.kernelSpace }

// Layout returns the memory layout (for co-located allocations).
func (mgr *Manager) Layout() *mem.Layout { return mgr.layout }

// NewSpace creates an address space whose page tables live on the given
// node.
func (mgr *Manager) NewSpace(name string, node int) *AddressSpace {
	as := &AddressSpace{
		id:       mgr.nextID,
		name:     name,
		node:     node,
		rootBase: mgr.layout.AllocAligned(node, leafEntries*pteSizeBytes),
		leaves:   make(map[uint32]*leafTable),
	}
	mgr.nextID++
	return as
}

// Current returns the space processor p is executing in.
func (mgr *Manager) Current(p *machine.Processor) *AddressSpace {
	return mgr.current[p.ID()]
}

// pageSize returns the machine page size.
func (mgr *Manager) pageSize() int { return mgr.layout.PageSize() }

// split returns the two-level indices of a virtual page number.
func split(vpn uint32) (top, low uint32) { return vpn / leafEntries, vpn % leafEntries }

// pteAddr returns the simulated address of the PTE for vpn, creating
// the leaf table if asked. New leaf tables are homed on createNode —
// the node of the processor installing the first mapping — mirroring
// Hurricane's distribution of kernel data: the leaf covering a
// processor's worker-stack slots ends up in that processor's local
// memory.
func (mgr *Manager) pteAddr(as *AddressSpace, vpn uint32, create bool, createNode int) (machine.Addr, *leafTable, bool) {
	top, low := split(vpn)
	leaf, ok := as.leaves[top]
	if !ok {
		if !create {
			return 0, nil, false
		}
		leaf = &leafTable{
			base:    mgr.layout.AllocAligned(createNode, leafEntries*pteSizeBytes),
			entries: make(map[uint32]PTE),
		}
		as.leaves[top] = leaf
	}
	return leaf.base + machine.Addr(low*pteSizeBytes), leaf, true
}

// Map installs a mapping va -> frame with the given protection. It
// charges the two-level table walk and the PTE store. va and frame must
// be page-aligned.
func (mgr *Manager) Map(p *machine.Processor, as *AddressSpace, va, frame machine.Addr, prot Prot) {
	ps := mgr.pageSize()
	if uint32(va)%uint32(ps) != 0 || uint32(frame)%uint32(ps) != 0 {
		panic(fmt.Sprintf("addrspace: unaligned map va=%#x frame=%#x", uint32(va), uint32(frame)))
	}
	mgr.Maps++
	p.Exec(mgr.segMap, mgr.segMap.Instrs)
	vpn := va.Page(ps)
	// Root lookup (load) then PTE store.
	top, low := split(vpn)
	p.Access(as.rootBase+machine.Addr(top*pteSizeBytes), pteSizeBytes, machine.Load)
	addr, leaf, _ := mgr.pteAddr(as, vpn, true, p.ID())
	p.Access(addr, pteSizeBytes, machine.Store)
	old := leaf.entries[low]
	if !old.Valid {
		as.mappedPages++
	}
	leaf.entries[low] = PTE{Frame: frame, Prot: prot, Valid: true}
}

// MapDirect installs a mapping through a cached pointer to the PTE slot
// (no root walk, shorter path) — the special-cased stack remap of the
// PPC fast path, where the kernel keeps the worker's stack-slot PTE
// address in the worker record.
func (mgr *Manager) MapDirect(p *machine.Processor, as *AddressSpace, va, frame machine.Addr, prot Prot) {
	ps := mgr.pageSize()
	if uint32(va)%uint32(ps) != 0 || uint32(frame)%uint32(ps) != 0 {
		panic(fmt.Sprintf("addrspace: unaligned map va=%#x frame=%#x", uint32(va), uint32(frame)))
	}
	mgr.Maps++
	p.Exec(mgr.segMap, 7)
	vpn := va.Page(ps)
	_, low := split(vpn)
	addr, leaf, _ := mgr.pteAddr(as, vpn, true, p.ID())
	p.Access(addr, pteSizeBytes, machine.Store)
	if !leaf.entries[low].Valid {
		as.mappedPages++
	}
	leaf.entries[low] = PTE{Frame: frame, Prot: prot, Valid: true}
}

// UnmapDirect removes a mapping through the cached PTE slot pointer,
// with the local TLB shootdown, and returns the frame.
func (mgr *Manager) UnmapDirect(p *machine.Processor, as *AddressSpace, va machine.Addr) machine.Addr {
	ps := mgr.pageSize()
	if uint32(va)%uint32(ps) != 0 {
		panic(fmt.Sprintf("addrspace: unaligned unmap va=%#x", uint32(va)))
	}
	mgr.Unmaps++
	p.Exec(mgr.segUnmap, 6)
	vpn := va.Page(ps)
	_, low := split(vpn)
	addr, leaf, ok := mgr.pteAddr(as, vpn, false, p.ID())
	if !ok || !leaf.entries[low].Valid {
		panic(fmt.Sprintf("addrspace: unmap of unmapped page va=%#x in %s", uint32(va), as.name))
	}
	p.Access(addr, pteSizeBytes, machine.Store)
	pte := leaf.entries[low]
	leaf.entries[low] = PTE{}
	as.mappedPages--

	ctx := machine.TLBUser
	if as.kernel {
		ctx = machine.TLBSupervisor
	}
	p.DTLB().FlushPage(ctx, vpn)
	p.ITLB().FlushPage(ctx, vpn)
	p.Charge(4)
	return pte.Frame
}

// Unmap removes the mapping for va, charging the PTE store and the TLB
// shootdown of the page on the executing processor. It returns the frame
// that was mapped.
func (mgr *Manager) Unmap(p *machine.Processor, as *AddressSpace, va machine.Addr) machine.Addr {
	ps := mgr.pageSize()
	if uint32(va)%uint32(ps) != 0 {
		panic(fmt.Sprintf("addrspace: unaligned unmap va=%#x", uint32(va)))
	}
	mgr.Unmaps++
	p.Exec(mgr.segUnmap, mgr.segUnmap.Instrs)
	vpn := va.Page(ps)
	top, low := split(vpn)
	p.Access(as.rootBase+machine.Addr(top*pteSizeBytes), pteSizeBytes, machine.Load)
	addr, leaf, ok := mgr.pteAddr(as, vpn, false, p.ID())
	if !ok || !leaf.entries[low].Valid {
		panic(fmt.Sprintf("addrspace: unmap of unmapped page va=%#x in %s", uint32(va), as.name))
	}
	p.Access(addr, pteSizeBytes, machine.Store)
	pte := leaf.entries[low]
	leaf.entries[low] = PTE{}
	as.mappedPages--

	// TLB shootdown of the page (local processor; cross-processor
	// shootdown is done via remote interrupts by the caller when needed).
	ctx := machine.TLBUser
	if as.kernel {
		ctx = machine.TLBSupervisor
	}
	p.DTLB().FlushPage(ctx, vpn)
	p.ITLB().FlushPage(ctx, vpn)
	p.Charge(4) // the ptc (probe TLB and clear) operation

	return pte.Frame
}

// Protect changes the protection of an existing mapping (e.g. sealing
// a grant region read-only), charging the PTE rewrite and the local TLB
// shootdown so stale access rights cannot linger.
func (mgr *Manager) Protect(p *machine.Processor, as *AddressSpace, va machine.Addr, prot Prot) {
	ps := mgr.pageSize()
	if uint32(va)%uint32(ps) != 0 {
		panic(fmt.Sprintf("addrspace: unaligned protect va=%#x", uint32(va)))
	}
	p.Exec(mgr.segMap, 8)
	vpn := va.Page(ps)
	_, low := split(vpn)
	addr, leaf, ok := mgr.pteAddr(as, vpn, false, p.ID())
	if !ok || !leaf.entries[low].Valid {
		panic(fmt.Sprintf("addrspace: protect of unmapped page va=%#x in %s", uint32(va), as.name))
	}
	p.Access(addr, pteSizeBytes, machine.Store)
	pte := leaf.entries[low]
	pte.Prot = prot
	leaf.entries[low] = pte

	ctx := machine.TLBUser
	if as.kernel {
		ctx = machine.TLBSupervisor
	}
	p.DTLB().FlushPage(ctx, vpn)
	p.ITLB().FlushPage(ctx, vpn)
	p.Charge(4)
}

// Translate resolves a virtual address without charging (the hardware
// walk cost is charged where the access happens, via TLB misses).
func (mgr *Manager) Translate(as *AddressSpace, va machine.Addr) (machine.Addr, Prot, bool) {
	ps := mgr.pageSize()
	vpn := va.Page(ps)
	top, low := split(vpn)
	leaf, ok := as.leaves[top]
	if !ok {
		return 0, 0, false
	}
	pte := leaf.entries[low]
	if !pte.Valid {
		return 0, 0, false
	}
	return pte.Frame + machine.Addr(uint32(va)%uint32(ps)), pte.Prot, true
}

// Access performs a simulated access to user virtual memory in the given
// space: it translates page by page, charges through the processor's
// cache/TLB model, and invokes the space's fault handler on unmapped or
// protection-violating pages. It panics on an unrepaired fault — the
// simulated equivalent of an uncaught exception.
func (mgr *Manager) Access(p *machine.Processor, as *AddressSpace, va machine.Addr, size int, kind machine.AccessKind) {
	ps := mgr.pageSize()
	for size > 0 {
		inPage := ps - int(uint32(va)%uint32(ps))
		n := size
		if n > inPage {
			n = inPage
		}
		pa, prot, ok := mgr.Translate(as, va)
		if !ok || !prot.allows(kind) {
			repaired := false
			if as.OnFault != nil {
				repaired = as.OnFault(p, as, va, kind)
			}
			if repaired {
				pa, prot, ok = mgr.Translate(as, va)
			}
			if !ok || !prot.allows(kind) {
				panic(fmt.Sprintf("addrspace: fault at va=%#x (%s) in %s", uint32(va), kind, as.name))
			}
		}
		p.AccessAt(va, pa, n, kind)
		va += machine.Addr(n)
		size -= n
	}
}

// SwitchTo changes the space processor p executes user code in. The
// dual-context M88200 TLB holds one user space and the supervisor space:
// entering or leaving the kernel space costs nothing extra, but
// installing a *different* user space than the one whose translations
// occupy the user context requires flushing that context — the source of
// the user-to-user PPC premium in Figure 2.
func (mgr *Manager) SwitchTo(p *machine.Processor, to *AddressSpace) {
	mgr.Switches++
	p.Exec(mgr.segSwitch, mgr.segSwitch.Instrs)
	if !to.kernel {
		if owner := mgr.userOwner[p.ID()]; owner != nil && owner != to {
			p.FlushUserTLB()
			mgr.UserTLBFlushes++
		}
		mgr.userOwner[p.ID()] = to
	}
	mgr.current[p.ID()] = to
}
