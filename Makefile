GO ?= go

.PHONY: build test race lint ppclint lint-selftest vet ci bench-smoke bench-json bench-openloop chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detector over the concurrency-sensitive packages (CI matrix).
race:
	$(GO) test -race ./rt ./internal/core ./internal/lrpc ./internal/locks ./internal/workload

vet:
	$(GO) vet ./...

# ppclint's own unit and golden-fixture tests (the linter lints itself
# before it lints the tree).
lint-selftest:
	cd tools/ppclint && $(GO) test ./...

# ppclint enforces the paper's hot-path invariants; see docs/INVARIANTS.md.
ppclint: lint-selftest
	$(GO) run ./tools/ppclint ./...

lint: vet ppclint

# Chaos/soak suite: deterministic fault injection (handler panics and
# stalls, delayed ring publishes, sustained backpressure, the arena
# storm, and the domain-death storm — clients abandoned mid-call and
# mid-hold under injected scavenge stalls) with convergence assertions
# after each storm. The injection sites compile in only under the
# faultinject tag.
chaos:
	$(GO) test -run Chaos -count=5 -tags faultinject ./rt/...
	$(GO) test -race -run Chaos -count=2 -tags faultinject ./rt/...

# One iteration of every benchmark: catches bit-rot in bench bodies
# without measuring anything.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regenerate BENCH_rt.json (real measurements; takes a few minutes at
# the default 1s benchtime — pass BENCHTIME=100ms for a quick pass).
BENCHTIME ?=
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_rt.json $(if $(BENCHTIME),-benchtime $(BENCHTIME))

# The open-loop tail-latency sweep alone (no microbenchmarks):
# calibrates capacity, then drives Poisson load at 0.2/0.7/1.4x and
# prints per-lane p50/p99/p999. Pass OPENLOOP_DUR=300ms for a quick
# pass; the default 2s window per point takes ~25s total.
OPENLOOP_DUR ?= 2s
bench-openloop:
	$(GO) test -run TestOpenLoopSweepReport -v -count=1 ./internal/rtbench -openloop-dur $(OPENLOOP_DUR)

ci: build lint test race chaos bench-smoke
