GO ?= go

.PHONY: build test race lint ppclint vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detector over the concurrency-sensitive packages (CI matrix).
race:
	$(GO) test -race ./rt ./internal/core ./internal/lrpc ./internal/locks ./internal/workload

vet:
	$(GO) vet ./...

# ppclint enforces the paper's hot-path invariants; see docs/INVARIANTS.md.
ppclint:
	cd tools/ppclint && $(GO) test ./...
	$(GO) run ./tools/ppclint ./...

lint: vet ppclint

ci: build lint test race
