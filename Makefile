GO ?= go

.PHONY: build test race lint ppclint vet ci bench-smoke bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detector over the concurrency-sensitive packages (CI matrix).
race:
	$(GO) test -race ./rt ./internal/core ./internal/lrpc ./internal/locks ./internal/workload

vet:
	$(GO) vet ./...

# ppclint enforces the paper's hot-path invariants; see docs/INVARIANTS.md.
ppclint:
	cd tools/ppclint && $(GO) test ./...
	$(GO) run ./tools/ppclint ./...

lint: vet ppclint

# One iteration of every benchmark: catches bit-rot in bench bodies
# without measuring anything.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regenerate BENCH_rt.json (real measurements; takes a few minutes at
# the default 1s benchtime — pass BENCHTIME=100ms for a quick pass).
BENCHTIME ?=
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_rt.json $(if $(BENCHTIME),-benchtime $(BENCHTIME))

ci: build lint test race bench-smoke
