module hurricane

go 1.24
