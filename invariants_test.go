package hurricane

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotPathDocsCarryAnnotations guards against annotation drift: any
// function whose doc comment claims to be a "fast path" or "hot path"
// must either carry a //ppc:hotpath or //ppc:coldpath directive (so
// ppclint actually checks the claim) or live in a package whose package
// comment declares //ppc:boundary (simulated hardware, outside the
// invariant). Prose claims that the linter cannot see rot silently;
// this test makes them load-bearing.
// hasDirective reports whether the comment group contains a line that
// starts with the given directive. CommentGroup.Text() strips directive
// comments, so the raw list must be scanned.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

type parsedFile struct {
	path string
	file *ast.File
}

// parseTree parses every non-test .go file in the repo (skipping
// tools/ and testdata/) and returns the files plus the set of
// directories whose package comment declares //ppc:boundary.
func parseTree(t *testing.T, fset *token.FileSet) ([]parsedFile, map[string]bool) {
	t.Helper()
	boundaryDirs := map[string]bool{}
	var files []parsedFile
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || path == "tools" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		if hasDirective(f.Doc, "//ppc:boundary") {
			boundaryDirs[filepath.Dir(path)] = true
		}
		files = append(files, parsedFile{path: path, file: f})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files, boundaryDirs
}

func TestHotPathDocsCarryAnnotations(t *testing.T) {
	fset := token.NewFileSet()
	files, boundaryDirs := parseTree(t, fset)

	for _, pf := range files {
		if boundaryDirs[filepath.Dir(pf.path)] {
			continue
		}
		for _, decl := range pf.file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Doc != nil {
				lower := strings.ToLower(fn.Doc.Text())
				if !strings.Contains(lower, "fast path") && !strings.Contains(lower, "hot path") {
					continue
				}
				if hasDirective(fn.Doc, "//ppc:hotpath") || hasDirective(fn.Doc, "//ppc:coldpath") {
					continue
				}
				pos := fset.Position(fn.Pos())
				t.Errorf("%s:%d: %s's doc comment claims a fast/hot path but carries no //ppc:hotpath or //ppc:coldpath directive; annotate it so ppclint enforces the claim (see docs/INVARIANTS.md)",
					pos.Filename, pos.Line, fn.Name.Name)
			}
		}
	}
	if len(boundaryDirs) == 0 {
		t.Error("no //ppc:boundary package comments found; expected at least internal/machine")
	}
}

// fieldDoc returns the comment group attached to a struct field —
// preferring the doc block above it, falling back to the line comment.
func fieldDoc(f *ast.Field) *ast.CommentGroup {
	if f.Doc != nil {
		return f.Doc
	}
	return f.Comment
}

// TestPaddedStructsCarryAnnotations guards the layout directives
// against drift: a struct that pays for cache-line isolation with a
// blank [N]byte pad field is making a layout claim, and must carry
// //ppc:padded so ppclint's layout analyzer verifies the claim from
// real field offsets instead of trusting hand-counted pads.
func TestPaddedStructsCarryAnnotations(t *testing.T) {
	fset := token.NewFileSet()
	files, boundaryDirs := parseTree(t, fset)

	isBytePad := func(f *ast.Field) bool {
		if len(f.Names) != 1 || f.Names[0].Name != "_" {
			return false
		}
		arr, ok := f.Type.(*ast.ArrayType)
		if !ok || arr.Len == nil {
			return false
		}
		id, ok := arr.Elt.(*ast.Ident)
		return ok && id.Name == "byte"
	}

	for _, pf := range files {
		if boundaryDirs[filepath.Dir(pf.path)] {
			continue
		}
		for _, decl := range pf.file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				padded := false
				for _, f := range st.Fields.List {
					if isBytePad(f) {
						padded = true
						break
					}
				}
				if !padded {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if hasDirective(doc, "//ppc:padded") {
					continue
				}
				pos := fset.Position(ts.Pos())
				t.Errorf("%s:%d: struct %s declares blank [N]byte padding but carries no //ppc:padded directive; annotate it so ppclint verifies the layout (see docs/INVARIANTS.md)",
					pos.Filename, pos.Line, ts.Name.Name)
			}
		}
	}
}

// TestPublishWordsCarryAnnotations guards the ordering directives: a
// field whose doc comment calls it a "publish word" or a "release
// edge" is claiming release/acquire pairing, and must carry
// //ppc:publishes naming the payload so ppclint's ordering analyzer
// checks every store and load of it.
func TestPublishWordsCarryAnnotations(t *testing.T) {
	fset := token.NewFileSet()
	files, boundaryDirs := parseTree(t, fset)

	for _, pf := range files {
		if boundaryDirs[filepath.Dir(pf.path)] {
			continue
		}
		ast.Inspect(pf.file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				doc := fieldDoc(f)
				if doc == nil {
					continue
				}
				lower := strings.ToLower(doc.Text())
				if !strings.Contains(lower, "publish word") && !strings.Contains(lower, "release edge") {
					continue
				}
				if hasDirective(doc, "//ppc:publishes") {
					continue
				}
				pos := fset.Position(f.Pos())
				name := "_"
				if len(f.Names) > 0 {
					name = f.Names[0].Name
				}
				t.Errorf("%s:%d: field %s's doc comment calls it a publish word but carries no //ppc:publishes directive; declare the payload so ppclint checks the release/acquire pairing (see docs/INVARIANTS.md)",
					pos.Filename, pos.Line, name)
			}
			return true
		})
	}
}

// TestABALoopsCarryAnnotations guards the CAS-protocol directives: a
// function whose doc comment discusses ABA and whose body contains a
// CAS retry loop must carry //ppc:aba naming what defeats reuse, so
// the protection claim is visible to ppclint's casloop analyzer
// instead of living only in prose.
func TestABALoopsCarryAnnotations(t *testing.T) {
	fset := token.NewFileSet()
	files, boundaryDirs := parseTree(t, fset)

	hasCASLoop := func(fn *ast.FuncDecl) bool {
		found := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || found {
				return !found
			}
			ast.Inspect(loop.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
						strings.HasPrefix(sel.Sel.Name, "CompareAndSwap") {
						found = true
					}
				}
				return !found
			})
			return !found
		})
		return found
	}

	for _, pf := range files {
		if boundaryDirs[filepath.Dir(pf.path)] {
			continue
		}
		for _, decl := range pf.file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			if !strings.Contains(strings.ToLower(fn.Doc.Text()), "aba") {
				continue
			}
			if !hasCASLoop(fn) {
				continue
			}
			if hasDirective(fn.Doc, "//ppc:aba") {
				continue
			}
			pos := fset.Position(fn.Pos())
			t.Errorf("%s:%d: %s's doc comment discusses ABA and its body retries a CAS, but it carries no //ppc:aba directive; name the protecting mechanism so ppclint checks it (see docs/INVARIANTS.md)",
				pos.Filename, pos.Line, fn.Name.Name)
		}
	}
}
