package hurricane

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotPathDocsCarryAnnotations guards against annotation drift: any
// function whose doc comment claims to be a "fast path" or "hot path"
// must either carry a //ppc:hotpath or //ppc:coldpath directive (so
// ppclint actually checks the claim) or live in a package whose package
// comment declares //ppc:boundary (simulated hardware, outside the
// invariant). Prose claims that the linter cannot see rot silently;
// this test makes them load-bearing.
// hasDirective reports whether the comment group contains a line that
// starts with the given directive. CommentGroup.Text() strips directive
// comments, so the raw list must be scanned.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

func TestHotPathDocsCarryAnnotations(t *testing.T) {
	fset := token.NewFileSet()
	boundaryDirs := map[string]bool{}
	type parsed struct {
		path string
		file *ast.File
	}
	var files []parsed

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || path == "tools" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		if hasDirective(f.Doc, "//ppc:boundary") {
			boundaryDirs[filepath.Dir(path)] = true
		}
		files = append(files, parsed{path: path, file: f})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, pf := range files {
		if boundaryDirs[filepath.Dir(pf.path)] {
			continue
		}
		for _, decl := range pf.file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Doc != nil {
				lower := strings.ToLower(fn.Doc.Text())
				if !strings.Contains(lower, "fast path") && !strings.Contains(lower, "hot path") {
					continue
				}
				if hasDirective(fn.Doc, "//ppc:hotpath") || hasDirective(fn.Doc, "//ppc:coldpath") {
					continue
				}
				pos := fset.Position(fn.Pos())
				t.Errorf("%s:%d: %s's doc comment claims a fast/hot path but carries no //ppc:hotpath or //ppc:coldpath directive; annotate it so ppclint enforces the claim (see docs/INVARIANTS.md)",
					pos.Filename, pos.Line, fn.Name.Name)
			}
		}
	}
	if len(boundaryDirs) == 0 {
		t.Error("no //ppc:boundary package comments found; expected at least internal/machine")
	}
}
