// Command ppclint is the repository's invariant linter: a multichecker
// in the style of golang.org/x/tools/go/analysis/multichecker, built
// entirely on the standard library so the root module stays
// dependency-free and the tool builds offline. It enforces the source
// paper's structural claims — the common-case call path touches no
// shared data, acquires no locks, and allocates nothing — as six
// analyzers driven by //ppc: annotations:
//
//	hotpath      no locks / blocking / logging / allocation reachable
//	             from a //ppc:hotpath root (up to //ppc:coldpath)
//	shardconfine //ppc:shard-owned fields stay inside their shard type
//	atomicfield  //ppc:atomic fields are accessed only atomically
//	ordering     //ppc:publishes(f1,f2) fields: stores publish their
//	             payload (write-before-store, load-before-read pairing)
//	casloop      CAS retry loops re-read their witness, stay hot, and
//	             declare ABA protection with //ppc:aba(tag)
//	layout       //ppc:padded structs: //ppc:hotline fields occupy
//	             isolated 64-byte lines, checked against real offsets
//
// Usage (from the module to analyze):
//
//	go run ./tools/ppclint ./...
//	go run ./tools/ppclint -json ./...   # one JSON finding per line
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors. See
// docs/INVARIANTS.md for the annotation grammar and suppression policy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hurricane/tools/ppclint/internal/analysis"
	"hurricane/tools/ppclint/internal/analyzers/atomicfield"
	"hurricane/tools/ppclint/internal/analyzers/casloop"
	"hurricane/tools/ppclint/internal/analyzers/hotpath"
	"hurricane/tools/ppclint/internal/analyzers/layout"
	"hurricane/tools/ppclint/internal/analyzers/ordering"
	"hurricane/tools/ppclint/internal/analyzers/shardconfine"
	"hurricane/tools/ppclint/internal/load"
)

var all = []*analysis.Analyzer{
	hotpath.Analyzer,
	shardconfine.Analyzer,
	atomicfield.Analyzer,
	ordering.Analyzer,
	casloop.Analyzer,
	layout.Analyzer,
}

// jsonFinding is the -json wire format: one object per line, stable
// field names, paths relative to the analyzed module root.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	dir := flag.String("dir", ".", "directory whose module is analyzed")
	asJSON := flag.Bool("json", false, "emit findings as JSON, one object per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ppclint [-run hotpath,...] [-dir .] [-json] packages...\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-13s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	selected := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "ppclint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	prog, err := load.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppclint: loading %s (patterns %s): %v\n", *dir, strings.Join(patterns, " "), err)
		os.Exit(2)
	}
	aprog := &analysis.Program{
		Fset:        prog.Fset,
		Packages:    prog.Packages,
		Annotations: analysis.CollectAnnotations(prog.Fset, prog.Packages),
	}

	root := load.ModuleRoot(*dir)
	diags := append([]analysis.Diagnostic(nil), aprog.Annotations.Problems...)
	for _, a := range selected {
		diags = append(diags, a.Run(aprog)...)
	}
	analysis.SortDiagnostics(prog.Fset, diags)
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		if *asJSON {
			enc.Encode(jsonFinding{
				File:     load.TrimPath(root, pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			continue
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", load.TrimPath(root, pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ppclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
