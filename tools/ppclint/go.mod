module hurricane/tools/ppclint

go 1.22
