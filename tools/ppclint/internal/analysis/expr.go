// Shared syntax helpers for the ordering and casloop analyzers:
// recognizing sync/atomic operations on struct fields, canonicalizing
// base expressions so two accesses to the same instance compare equal,
// and an enclosing-block dominance approximation for "this write
// happens before that store on every path".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// OpKind classifies an atomic operation.
type OpKind int

const (
	OpLoad  OpKind = iota // Load
	OpStore               // Store
	OpRMW                 // Add, And, Or, Swap — read-modify-write
	OpCAS                 // CompareAndSwap
)

// AtomicOp is one recognized sync/atomic operation on a struct field,
// either wrapper-method form (base.F.Store(v)) or function form
// (atomic.StoreUint64(&base.F, v)).
type AtomicOp struct {
	Call  *ast.CallExpr
	Field *types.Var // the struct field operated on
	Base  ast.Expr   // the struct expression F is selected from
	Kind  OpKind
	Old   ast.Expr // CAS witness argument, nil unless Kind == OpCAS
}

func opKindOf(name string) (OpKind, bool) {
	switch {
	case strings.HasPrefix(name, "CompareAndSwap"):
		return OpCAS, true
	case strings.HasPrefix(name, "Load"):
		return OpLoad, true
	case strings.HasPrefix(name, "Store"):
		return OpStore, true
	case strings.HasPrefix(name, "Add"), strings.HasPrefix(name, "Swap"),
		strings.HasPrefix(name, "And"), strings.HasPrefix(name, "Or"):
		return OpRMW, true
	}
	return 0, false
}

// AsAtomicOp recognizes call as an atomic operation on a struct field
// and returns its description, or nil.
func AsAtomicOp(info *types.Info, call *ast.CallExpr) *AtomicOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	kind, ok := opKindOf(sel.Sel.Name)
	if !ok {
		return nil
	}

	// Wrapper-method form: base.F.Store(v), with F an atomic.* field.
	if fieldSel, ok := sel.X.(*ast.SelectorExpr); ok {
		if s := info.Selections[fieldSel]; s != nil && s.Kind() == types.FieldVal {
			fv, _ := s.Obj().(*types.Var)
			if fv != nil && isAtomicWrapper(fv.Type()) {
				op := &AtomicOp{Call: call, Field: fv, Base: fieldSel.X, Kind: kind}
				if kind == OpCAS && len(call.Args) > 0 {
					op.Old = call.Args[0]
				}
				return op
			}
		}
	}

	// Function form: atomic.StoreUint64(&base.F, v).
	if pkgIdent, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[pkgIdent].(*types.PkgName); ok && pn.Imported().Path() == "sync/atomic" {
			if len(call.Args) == 0 {
				return nil
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return nil
			}
			fieldSel, ok := addr.X.(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			s := info.Selections[fieldSel]
			if s == nil || s.Kind() != types.FieldVal {
				return nil
			}
			fv, _ := s.Obj().(*types.Var)
			if fv == nil {
				return nil
			}
			op := &AtomicOp{Call: call, Field: fv, Base: fieldSel.X, Kind: kind}
			if kind == OpCAS && len(call.Args) > 1 {
				op.Old = call.Args[1]
			}
			return op
		}
	}
	return nil
}

// isAtomicWrapper reports whether t is a named type from sync/atomic
// (atomic.Uint64, atomic.Pointer[T], ...).
func isAtomicWrapper(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// ExprKey canonicalizes a base expression so two syntactic accesses to
// the same instance compare equal: identifiers key on their resolved
// object, selectors and indexes compose structurally. Returns "" for
// expressions with no stable key (calls, literals).
func ExprKey(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return fmt.Sprintf("o%p", obj)
		}
	case *ast.SelectorExpr:
		if k := ExprKey(info, e.X); k != "" {
			return k + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return ExprKey(info, e.X)
	case *ast.StarExpr:
		if k := ExprKey(info, e.X); k != "" {
			return "*" + k
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if k := ExprKey(info, e.X); k != "" {
				return "&" + k
			}
		}
	case *ast.IndexExpr:
		if k := ExprKey(info, e.X); k != "" {
			return k + "[" + types.ExprString(e.Index) + "]"
		}
	}
	return ""
}

// Parents maps every node in root to its syntactic parent.
func Parents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// stmtLoc is one step of a statement chain: the statement list a
// statement belongs to (a block, or a case/comm clause body) and its
// index there.
type stmtLoc struct {
	container ast.Node
	idx       int
}

// stmtIndex locates stmt within its container's statement list.
func stmtIndex(container ast.Node, stmt ast.Stmt) int {
	var list []ast.Stmt
	switch c := container.(type) {
	case *ast.BlockStmt:
		list = c.List
	case *ast.CaseClause:
		list = c.Body
	case *ast.CommClause:
		list = c.Body
	default:
		return -1
	}
	for i, s := range list {
		if s == stmt {
			return i
		}
	}
	return -1
}

// chainOf walks from n up to the function body, recording, for every
// enclosing statement that sits directly in a statement list, its
// container and index. The result is ordered outermost-first.
func chainOf(parents map[ast.Node]ast.Node, n ast.Node) []stmtLoc {
	var chain []stmtLoc
	for cur := n; cur != nil; cur = parents[cur] {
		stmt, ok := cur.(ast.Stmt)
		if !ok {
			continue
		}
		p := parents[stmt]
		if idx := stmtIndex(p, stmt); idx >= 0 {
			chain = append(chain, stmtLoc{container: p, idx: idx})
		}
	}
	// reverse to outermost-first
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// Dominates approximates "w executes before s on every path reaching
// s" within one function body: w's *innermost* statement list must be
// one that encloses s (so s cannot run without control having passed
// through that list), with w's statement at an earlier index. A write
// nested inside a branch or loop body that s sits outside of shares an
// ancestor list but not its innermost one, and does not dominate.
// When w's statement is itself on s's chain (e.g. w in an if-init whose
// body contains s), source order decides.
func Dominates(parents map[ast.Node]ast.Node, w, s ast.Node) bool {
	cw, cs := chainOf(parents, w), chainOf(parents, s)
	if len(cw) == 0 || len(cs) == 0 {
		return false
	}
	wl := cw[len(cw)-1] // w's innermost (container, index)
	for _, loc := range cs {
		if loc.container != wl.container {
			continue
		}
		if wl.idx != loc.idx {
			return wl.idx < loc.idx
		}
		// w and s share the statement at this level; w sits directly
		// in it while s may be nested deeper.
		return w.Pos() < s.Pos()
	}
	return false
}
