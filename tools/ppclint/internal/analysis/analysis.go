// Package analysis is ppclint's tiny analyzer framework: the shape of
// golang.org/x/tools/go/analysis (Analyzer, diagnostics, a driver
// contract) re-implemented on the standard library so the linter can be
// built offline with no dependencies. Analyzers run over a whole
// Program (all module-local packages at once) because the invariants
// they enforce — hot-path reachability, shard confinement — cross
// package boundaries.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hurricane/tools/ppclint/internal/load"
)

// Diagnostic is one finding, positioned at the offending node.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program) []Diagnostic
}

// Program is the analyzed world: the loaded packages plus the parsed
// //ppc: annotation index shared by all analyzers.
type Program struct {
	Fset        *token.FileSet
	Packages    []*load.Package
	Annotations *Annotations
}

// FuncInfo ties a declared function to its syntax and owning package.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *load.Package
}

// FieldInfo ties an annotated struct field to its declaration site.
type FieldInfo struct {
	Owner *types.Named // the struct's named type
	Field *types.Var
	Pkg   *load.Package
	Pos   token.Pos
}

// PublishInfo is one //ppc:publishes(f1,f2) directive: the annotated
// atomic field plus its resolved sibling payload fields.
type PublishInfo struct {
	FieldInfo
	Payload []*types.Var // sibling fields published by stores to Field
}

// HotlineInfo is one //ppc:hotline[(group)] directive. Fields sharing a
// group may share cache lines with each other but with nothing else;
// an ungrouped hotline field is its own singleton group.
type HotlineInfo struct {
	FieldInfo
	Group string
}

// PaddedInfo is one //ppc:padded directive on a struct type.
type PaddedInfo struct {
	Owner *types.Named
	Pkg   *load.Package
	Pos   token.Pos
}

// ABAInfo is one //ppc:aba(tag) directive on a function: tag names the
// generation field that defeats ABA, or is the literal "gc" when Go's
// garbage collector rules out address reuse.
type ABAInfo struct {
	Tag string
	Pos token.Pos
}

// Annotations is the parsed //ppc: directive index.
//
// The grammar (one directive per comment line, in a declaration's doc
// comment; `-- reason` suffixes are free text):
//
//	//ppc:hotpath [-- note]           on a func: root of a hot path
//	//ppc:coldpath -- reason          on a func: walk boundary (reason required)
//	//ppc:shard(Type) [-- reason]     on a func: may touch Type's shard-owned fields
//	//ppc:aba(tag) [-- reason]        on a func: its CAS retry loop is ABA-sensitive,
//	                                  protected by generation field `tag` (or "gc")
//	//ppc:shard-owned                 on a struct field: confined to its owner
//	//ppc:atomic                      on a struct field: sync/atomic access only
//	//ppc:publishes(f1,f2)            on a struct field: stores to it publish the
//	                                  named sibling payload fields (release/acquire)
//	//ppc:hotline[(group)]            on a struct field: must occupy an isolated
//	                                  64-byte line (shared only within its group)
//	//ppc:padded                      on a struct type: layout is checked against
//	                                  real offsets/sizes by the layout analyzer
//	//ppc:boundary -- reason          in a package doc: calls into this package
//	                                  are not walked (it models the machine)
//	//ppc:nopublish -- reason         inline, on/above a store statement: this
//	                                  store of a //ppc:publishes field publishes
//	                                  no payload (sentinel, recycle, construction)
type Annotations struct {
	Hot       map[*types.Func]bool
	Cold      map[*types.Func]bool
	ShardOf   map[*types.Func][]string // type names granted by //ppc:shard(T)
	ABA       map[*types.Func]*ABAInfo
	Owned     map[*types.Var]*FieldInfo
	Atomic    map[*types.Var]*FieldInfo
	Publishes map[*types.Var]*PublishInfo
	Hotline   map[*types.Var]*HotlineInfo
	Padded    map[*types.Named]*PaddedInfo
	Boundary  map[string]bool // package path -> //ppc:boundary
	Funcs     map[*types.Func]*FuncInfo

	// NoPublish records //ppc:nopublish suppression comments by file
	// and line; a store on (or directly below) a recorded line is
	// exempt from the ordering analyzer's publish check.
	NoPublish map[string]map[int]bool

	// Problems are malformed or contradictory directives, reported by
	// the driver as diagnostics in their own right.
	Problems []Diagnostic
}

// directive is one parsed //ppc: line.
type directive struct {
	verb   string // "hotpath", "coldpath", "shard", ...
	arg    string // parenthesized argument, if any
	reason string // text after "--", if any
	pos    token.Pos
}

// parseDirectives extracts //ppc: lines from a comment group.
func parseDirectives(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, "//ppc:")
		if !ok {
			continue
		}
		// A directive may carry a trailing //-comment on the same line
		// (fixtures use this for want annotations); it is not part of
		// the directive or its reason.
		if i := strings.Index(text, "//"); i >= 0 {
			text = text[:i]
		}
		d := directive{pos: c.Pos()}
		if body, reason, ok := strings.Cut(text, "--"); ok {
			text, d.reason = strings.TrimSpace(body), strings.TrimSpace(reason)
		} else {
			text = strings.TrimSpace(text)
		}
		if i := strings.IndexByte(text, '('); i >= 0 && strings.HasSuffix(text, ")") {
			d.verb = text[:i]
			d.arg = strings.TrimSpace(text[i+1 : len(text)-1])
		} else {
			d.verb = text
		}
		out = append(out, d)
	}
	return out
}

// CollectAnnotations parses every //ppc: directive in the program. The
// FileSet is needed to place inline //ppc:nopublish suppressions, which
// attach to source lines rather than declarations.
func CollectAnnotations(fset *token.FileSet, pkgs []*load.Package) *Annotations {
	a := &Annotations{
		Hot:       make(map[*types.Func]bool),
		Cold:      make(map[*types.Func]bool),
		ShardOf:   make(map[*types.Func][]string),
		ABA:       make(map[*types.Func]*ABAInfo),
		Owned:     make(map[*types.Var]*FieldInfo),
		Atomic:    make(map[*types.Var]*FieldInfo),
		Publishes: make(map[*types.Var]*PublishInfo),
		Hotline:   make(map[*types.Var]*HotlineInfo),
		Padded:    make(map[*types.Named]*PaddedInfo),
		Boundary:  make(map[string]bool),
		Funcs:     make(map[*types.Func]*FuncInfo),
		NoPublish: make(map[string]map[int]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range parseDirectives(file.Doc) {
				if d.verb == "boundary" {
					if d.reason == "" {
						a.problemf(d.pos, "//ppc:boundary needs a justification: //ppc:boundary -- reason")
					}
					a.Boundary[pkg.PkgPath] = true
				} else {
					a.problemf(d.pos, "//ppc:%s is not a package-level directive", d.verb)
				}
			}
			// Inline suppressions live in arbitrary comment groups, not
			// declaration docs; index them by file:line.
			for _, cg := range file.Comments {
				for _, d := range parseDirectives(cg) {
					if d.verb != "nopublish" {
						continue
					}
					if d.reason == "" {
						a.problemf(d.pos, "//ppc:nopublish needs a justification: //ppc:nopublish -- reason")
					}
					p := fset.Position(d.pos)
					if a.NoPublish[p.Filename] == nil {
						a.NoPublish[p.Filename] = make(map[int]bool)
					}
					a.NoPublish[p.Filename][p.Line] = true
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					a.collectFunc(pkg, n)
					return false // directives inside bodies are not declarations
				case *ast.GenDecl:
					if n.Tok != token.TYPE {
						return true
					}
					for _, spec := range n.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						doc := ts.Doc
						if doc == nil {
							doc = n.Doc // single-spec decls attach the doc to the GenDecl
						}
						a.collectType(pkg, ts, doc)
					}
					return false
				}
				return true
			})
		}
	}
	// Post-pass: a //ppc:hotline field outside a //ppc:padded struct is
	// unreachable by the layout analyzer — that is drift, not a check.
	for fv, h := range a.Hotline {
		if a.Padded[h.Owner] == nil {
			a.problemf(h.Pos, "//ppc:hotline on %s.%s requires //ppc:padded on the struct", h.Owner.Obj().Name(), fv.Name())
		}
	}
	return a
}

func (a *Annotations) collectFunc(pkg *load.Package, decl *ast.FuncDecl) {
	obj, _ := pkg.Info.Defs[decl.Name].(*types.Func)
	if obj == nil {
		return
	}
	a.Funcs[obj] = &FuncInfo{Decl: decl, Pkg: pkg}
	for _, d := range parseDirectives(decl.Doc) {
		switch d.verb {
		case "hotpath":
			a.Hot[obj] = true
		case "coldpath":
			if d.reason == "" {
				a.problemf(d.pos, "//ppc:coldpath on %s needs a justification: //ppc:coldpath -- reason", obj.Name())
			}
			a.Cold[obj] = true
		case "shard":
			if d.arg == "" {
				a.problemf(d.pos, "//ppc:shard needs an owner type: //ppc:shard(Type)")
				continue
			}
			a.ShardOf[obj] = append(a.ShardOf[obj], d.arg)
		case "aba":
			if d.arg == "" {
				a.problemf(d.pos, "//ppc:aba needs the protecting generation field: //ppc:aba(tag) — use //ppc:aba(gc) when GC rules out reuse")
				continue
			}
			a.ABA[obj] = &ABAInfo{Tag: d.arg, Pos: d.pos}
		default:
			a.problemf(d.pos, "unknown directive //ppc:%s on %s", d.verb, obj.Name())
		}
	}
	if a.Hot[obj] && a.Cold[obj] {
		a.problemf(decl.Pos(), "%s is marked both //ppc:hotpath and //ppc:coldpath", obj.Name())
	}
}

func (a *Annotations) collectType(pkg *load.Package, spec *ast.TypeSpec, doc *ast.CommentGroup) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		for _, d := range parseDirectives(doc) {
			a.problemf(d.pos, "//ppc:%s applies to struct types; %s is not a struct", d.verb, spec.Name.Name)
		}
		return
	}
	named, _ := pkg.Info.Defs[spec.Name].(*types.TypeName)
	if named == nil {
		return
	}
	owner, _ := named.Type().(*types.Named)
	if owner == nil {
		return
	}
	for _, d := range parseDirectives(doc) {
		switch d.verb {
		case "padded":
			a.Padded[owner] = &PaddedInfo{Owner: owner, Pkg: pkg, Pos: spec.Name.Pos()}
		default:
			a.problemf(d.pos, "unknown type directive //ppc:%s on %s", d.verb, owner.Obj().Name())
		}
	}
	for _, field := range st.Fields.List {
		dirs := parseDirectives(field.Doc)
		dirs = append(dirs, parseDirectives(field.Comment)...)
		if len(dirs) == 0 {
			continue
		}
		for _, name := range field.Names {
			fv, _ := pkg.Info.Defs[name].(*types.Var)
			if fv == nil {
				continue
			}
			info := &FieldInfo{Owner: owner, Field: fv, Pkg: pkg, Pos: name.Pos()}
			for _, d := range dirs {
				switch d.verb {
				case "shard-owned":
					a.Owned[fv] = info
				case "atomic":
					a.Atomic[fv] = info
				case "publishes":
					pi := &PublishInfo{FieldInfo: *info}
					for _, pname := range strings.Split(d.arg, ",") {
						pname = strings.TrimSpace(pname)
						if pname == "" {
							continue
						}
						if pname == fv.Name() {
							a.problemf(d.pos, "//ppc:publishes on %s.%s names itself as payload", owner.Obj().Name(), fv.Name())
							continue
						}
						sib := structFieldNamed(owner, pname)
						if sib == nil {
							a.problemf(d.pos, "//ppc:publishes on %s.%s: no sibling field %q", owner.Obj().Name(), fv.Name(), pname)
							continue
						}
						pi.Payload = append(pi.Payload, sib)
					}
					if len(pi.Payload) == 0 {
						a.problemf(d.pos, "//ppc:publishes on %s.%s needs payload fields: //ppc:publishes(f1,f2)", owner.Obj().Name(), fv.Name())
						continue
					}
					a.Publishes[fv] = pi
				case "hotline":
					group := d.arg
					if group == "" {
						group = fv.Name() // singleton group: isolated line
					}
					a.Hotline[fv] = &HotlineInfo{FieldInfo: *info, Group: group}
				default:
					a.problemf(d.pos, "unknown field directive //ppc:%s on %s.%s", d.verb, owner.Obj().Name(), fv.Name())
				}
			}
		}
		if len(field.Names) == 0 {
			a.problemf(field.Pos(), "//ppc: field directives are not supported on embedded fields")
		}
	}
}

// structFieldNamed resolves a field of owner's underlying struct by name.
func structFieldNamed(owner *types.Named, name string) *types.Var {
	st, ok := owner.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

func (a *Annotations) problemf(pos token.Pos, format string, args ...any) {
	a.Problems = append(a.Problems, Diagnostic{Pos: pos, Analyzer: "ppcdirective", Message: fmt.Sprintf(format, args...)})
}

// FuncDisplayName renders a function for diagnostics: Recv.Name or Name.
func FuncDisplayName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

// SortDiagnostics orders diagnostics by position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return ds[i].Message < ds[j].Message
	})
}
