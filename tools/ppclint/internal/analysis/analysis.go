// Package analysis is ppclint's tiny analyzer framework: the shape of
// golang.org/x/tools/go/analysis (Analyzer, diagnostics, a driver
// contract) re-implemented on the standard library so the linter can be
// built offline with no dependencies. Analyzers run over a whole
// Program (all module-local packages at once) because the invariants
// they enforce — hot-path reachability, shard confinement — cross
// package boundaries.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hurricane/tools/ppclint/internal/load"
)

// Diagnostic is one finding, positioned at the offending node.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program) []Diagnostic
}

// Program is the analyzed world: the loaded packages plus the parsed
// //ppc: annotation index shared by all analyzers.
type Program struct {
	Fset        *token.FileSet
	Packages    []*load.Package
	Annotations *Annotations
}

// FuncInfo ties a declared function to its syntax and owning package.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *load.Package
}

// FieldInfo ties an annotated struct field to its declaration site.
type FieldInfo struct {
	Owner *types.Named // the struct's named type
	Field *types.Var
	Pkg   *load.Package
	Pos   token.Pos
}

// Annotations is the parsed //ppc: directive index.
//
// The grammar (one directive per comment line, in a declaration's doc
// comment; `-- reason` suffixes are free text):
//
//	//ppc:hotpath [-- note]           on a func: root of a hot path
//	//ppc:coldpath -- reason          on a func: walk boundary (reason required)
//	//ppc:shard(Type) [-- reason]     on a func: may touch Type's shard-owned fields
//	//ppc:shard-owned                 on a struct field: confined to its owner
//	//ppc:atomic                      on a struct field: sync/atomic access only
//	//ppc:boundary -- reason          in a package doc: calls into this package
//	                                  are not walked (it models the machine)
type Annotations struct {
	Hot      map[*types.Func]bool
	Cold     map[*types.Func]bool
	ShardOf  map[*types.Func][]string // type names granted by //ppc:shard(T)
	Owned    map[*types.Var]*FieldInfo
	Atomic   map[*types.Var]*FieldInfo
	Boundary map[string]bool // package path -> //ppc:boundary
	Funcs    map[*types.Func]*FuncInfo

	// Problems are malformed or contradictory directives, reported by
	// the driver as diagnostics in their own right.
	Problems []Diagnostic
}

// directive is one parsed //ppc: line.
type directive struct {
	verb   string // "hotpath", "coldpath", "shard", ...
	arg    string // parenthesized argument, if any
	reason string // text after "--", if any
	pos    token.Pos
}

// parseDirectives extracts //ppc: lines from a comment group.
func parseDirectives(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, "//ppc:")
		if !ok {
			continue
		}
		d := directive{pos: c.Pos()}
		if body, reason, ok := strings.Cut(text, "--"); ok {
			text, d.reason = strings.TrimSpace(body), strings.TrimSpace(reason)
		} else {
			text = strings.TrimSpace(text)
		}
		if i := strings.IndexByte(text, '('); i >= 0 && strings.HasSuffix(text, ")") {
			d.verb = text[:i]
			d.arg = strings.TrimSpace(text[i+1 : len(text)-1])
		} else {
			d.verb = text
		}
		out = append(out, d)
	}
	return out
}

// CollectAnnotations parses every //ppc: directive in the program.
func CollectAnnotations(pkgs []*load.Package) *Annotations {
	a := &Annotations{
		Hot:      make(map[*types.Func]bool),
		Cold:     make(map[*types.Func]bool),
		ShardOf:  make(map[*types.Func][]string),
		Owned:    make(map[*types.Var]*FieldInfo),
		Atomic:   make(map[*types.Var]*FieldInfo),
		Boundary: make(map[string]bool),
		Funcs:    make(map[*types.Func]*FuncInfo),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range parseDirectives(file.Doc) {
				if d.verb == "boundary" {
					if d.reason == "" {
						a.problemf(d.pos, "//ppc:boundary needs a justification: //ppc:boundary -- reason")
					}
					a.Boundary[pkg.PkgPath] = true
				} else {
					a.problemf(d.pos, "//ppc:%s is not a package-level directive", d.verb)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					a.collectFunc(pkg, n)
					return false // directives inside bodies are not declarations
				case *ast.TypeSpec:
					a.collectType(pkg, n)
					return false
				}
				return true
			})
		}
	}
	return a
}

func (a *Annotations) collectFunc(pkg *load.Package, decl *ast.FuncDecl) {
	obj, _ := pkg.Info.Defs[decl.Name].(*types.Func)
	if obj == nil {
		return
	}
	a.Funcs[obj] = &FuncInfo{Decl: decl, Pkg: pkg}
	for _, d := range parseDirectives(decl.Doc) {
		switch d.verb {
		case "hotpath":
			a.Hot[obj] = true
		case "coldpath":
			if d.reason == "" {
				a.problemf(d.pos, "//ppc:coldpath on %s needs a justification: //ppc:coldpath -- reason", obj.Name())
			}
			a.Cold[obj] = true
		case "shard":
			if d.arg == "" {
				a.problemf(d.pos, "//ppc:shard needs an owner type: //ppc:shard(Type)")
				continue
			}
			a.ShardOf[obj] = append(a.ShardOf[obj], d.arg)
		default:
			a.problemf(d.pos, "unknown directive //ppc:%s on %s", d.verb, obj.Name())
		}
	}
	if a.Hot[obj] && a.Cold[obj] {
		a.problemf(decl.Pos(), "%s is marked both //ppc:hotpath and //ppc:coldpath", obj.Name())
	}
}

func (a *Annotations) collectType(pkg *load.Package, spec *ast.TypeSpec) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	named, _ := pkg.Info.Defs[spec.Name].(*types.TypeName)
	if named == nil {
		return
	}
	owner, _ := named.Type().(*types.Named)
	if owner == nil {
		return
	}
	for _, field := range st.Fields.List {
		dirs := parseDirectives(field.Doc)
		dirs = append(dirs, parseDirectives(field.Comment)...)
		if len(dirs) == 0 {
			continue
		}
		for _, name := range field.Names {
			fv, _ := pkg.Info.Defs[name].(*types.Var)
			if fv == nil {
				continue
			}
			info := &FieldInfo{Owner: owner, Field: fv, Pkg: pkg, Pos: name.Pos()}
			for _, d := range dirs {
				switch d.verb {
				case "shard-owned":
					a.Owned[fv] = info
				case "atomic":
					a.Atomic[fv] = info
				default:
					a.problemf(d.pos, "unknown field directive //ppc:%s on %s.%s", d.verb, owner.Obj().Name(), fv.Name())
				}
			}
		}
		if len(field.Names) == 0 {
			a.problemf(field.Pos(), "//ppc: field directives are not supported on embedded fields")
		}
	}
}

func (a *Annotations) problemf(pos token.Pos, format string, args ...any) {
	a.Problems = append(a.Problems, Diagnostic{Pos: pos, Analyzer: "ppcdirective", Message: fmt.Sprintf(format, args...)})
}

// FuncDisplayName renders a function for diagnostics: Recv.Name or Name.
func FuncDisplayName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

// SortDiagnostics orders diagnostics by position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return ds[i].Message < ds[j].Message
	})
}
