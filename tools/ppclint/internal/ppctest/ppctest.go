// Package ppctest is ppclint's analogue of
// golang.org/x/tools/go/analysis/analysistest: it loads a fixture
// module, runs analyzers over it, and matches the diagnostics against
// `// want "regexp"` comments in the fixture sources. A diagnostic with
// no matching want, or a want with no matching diagnostic, fails the
// test — so the fixtures are golden proofs that each analyzer flags its
// seeded violations and nothing else.
package ppctest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"hurricane/tools/ppclint/internal/analysis"
	"hurricane/tools/ppclint/internal/load"
)

// wantRe extracts the quoted patterns of a `// want "a" "b"` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the fixture module rooted at dir (it must contain a go.mod)
// and checks analyzers' diagnostics against the fixture's want
// comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	prog, err := load.Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	aprog := &analysis.Program{
		Fset:        prog.Fset,
		Packages:    prog.Packages,
		Annotations: analysis.CollectAnnotations(prog.Fset, prog.Packages),
	}
	for _, p := range aprog.Annotations.Problems {
		pos := prog.Fset.Position(p.Pos)
		t.Errorf("%s:%d: directive problem: %s", pos.Filename, pos.Line, p.Message)
	}

	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		diags = append(diags, a.Run(aprog)...)
	}

	wants := collectWants(t, dir)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", absPath(pos.Filename), pos.Line)
		matched := false
		rest := wants[key][:0]
		for _, w := range wants[key] {
			if !matched && w.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, w)
		}
		wants[key] = rest
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s: no diagnostic matched want %q", key, re.String())
		}
	}
}

// absPath normalizes a filename so diagnostic positions (absolute, from
// go list) and want-comment positions (relative to the test's cwd)
// share one key space.
func absPath(p string) string {
	abs, err := filepath.Abs(p)
	if err != nil {
		return p
	}
	return abs
}

// collectWants parses every fixture file for want comments, keyed by
// file:line.
func collectWants(t *testing.T, dir string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", absPath(pos.Filename), pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	return wants
}
