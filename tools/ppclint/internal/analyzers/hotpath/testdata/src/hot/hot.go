// Package hot is the hotpath analyzer's violation fixture: every
// `want` comment is a seeded violation the analyzer must flag, and
// every unannotated construct is a legal pattern it must not flag.
package hot

import (
	"fmt"
	"sync"
	"time"
)

var mu sync.Mutex
var ch = make(chan int, 1)
var table = map[int]int{}

// FastCall is a hot-path root.
//
//ppc:hotpath
func FastCall(n int) int {
	lockingHelper() // the violation is reported inside the helper, with the chain
	n += viaChain(n)
	select { // non-blocking select is the sanctioned notification shape
	case ch <- n:
	default:
	}
	defer func() { n++ }() // direct defer of a func literal is open-coded: legal
	s := small{a: n}       // value composite literal: legal
	return n + s.a
}

// lockingHelper is reachable from FastCall.
func lockingHelper() {
	mu.Lock() // want "acquires sync.Mutex .Lock. .hot path: FastCall -> lockingHelper."
	mu.Unlock() // want "acquires sync.Mutex"
}

// viaChain tests two-hop chain reporting.
func viaChain(n int) int {
	return deepest(n)
}

func deepest(n int) int {
	time.Sleep(time.Nanosecond) // want "time.Sleep on the hot path .hot path: FastCall -> viaChain -> deepest."
	fmt.Println(n)              // want "calls fmt.Println"
	return n
}

// Allocator is a second root exercising the allocation rules.
//
//ppc:hotpath
func Allocator(buf []byte, n int) []byte {
	b := make([]byte, n) // want "make allocates"
	buf = append(buf, b...) // want "append may grow"
	p := &small{a: n} // want "composite literal escapes to the heap"
	xs := []int{n} // want "slice literal allocates"
	table[n] = n // want "map write"
	delete(table, n) // want "map delete"
	go func() { _ = n }() // want "spawns a goroutine" "closure allocates"
	ch <- n   // want "blocking channel send"
	x := <-ch // want "blocking channel receive"
	_ = string(buf) // want "conversion allocates"
	_ = table[n] // map read is legal
	return append0(buf, p.a+xs[0]+x)
}

// append0 is a capacity-guarded push: the legal hot-path shape.
func append0(buf []byte, n int) []byte {
	if len(buf) < cap(buf) {
		buf = buf[:len(buf)+1]
		buf[len(buf)-1] = byte(n)
		return buf
	}
	return growBuf(buf, n)
}

// growBuf is the cold half of the push.
//
//ppc:coldpath -- amortized pool growth, not per-call work
func growBuf(buf []byte, n int) []byte {
	return append(buf, byte(n)) // legal: behind a //ppc:coldpath boundary
}

// ColdControlPlane is never walked: fmt and locks are fine here.
func ColdControlPlane() {
	mu.Lock()
	defer mu.Unlock()
	fmt.Println("control plane")
}

// small is a value type for composite-literal tests.
type small struct{ a int }
