// Package hotpath enforces the paper's structural invariant: a PPC-style
// call path must acquire no locks, touch no shared mutable structures,
// block on nothing, and allocate nothing (Gamsa/Krieger/Stumm §3). It
// walks the static call graph from every //ppc:hotpath function, stops
// at //ppc:coldpath functions and //ppc:boundary packages, and reports
// each forbidden construct with the full call chain from the annotated
// root.
//
// Forbidden on a hot path:
//
//   - sync.Mutex/RWMutex/Once/Cond/WaitGroup.Wait, sync.Map, sync.Pool
//   - channel send/receive/range and select — except a select with a
//     default clause, whose communications are non-blocking by
//     construction (the shape rt uses for quiesce notification)
//   - time.Sleep/timers, runtime.Gosched/GC, fmt, log, print/println
//   - the simulated locks of hurricane/internal/locks (exactly the
//     shared lock whose Figure 3 curve collapses at 4 CPUs)
//   - heap allocation: make/new/append, &composite-literal, slice or
//     map literals, string<->[]byte conversions, closures (other than
//     a func literal called directly by defer, which is open-coded),
//     map writes (insert/delete may grow or rehash), go statements
//
// Dynamic calls (func values, interface methods) are walk boundaries:
// the handler a call invokes is the server's business, not the call
// machinery's. The invariant protects the machinery.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hurricane/tools/ppclint/internal/analysis"
	"hurricane/tools/ppclint/internal/load"
)

// name is the analyzer name used in diagnostics.
const name = "hotpath"

// Analyzer is the hotpath invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "functions reachable from //ppc:hotpath roots must not lock, block, log, or allocate",
	Run:  run,
}

// violation is one forbidden construct found in a function body.
type violation struct {
	pos  token.Pos
	what string
}

// funcFacts caches the per-function scan: violations in the body and
// statically-resolved callees to descend into.
type funcFacts struct {
	viols   []violation
	callees []*types.Func
}

func run(prog *analysis.Program) []analysis.Diagnostic {
	ann := prog.Annotations
	local := make(map[string]bool, len(prog.Packages))
	for _, p := range prog.Packages {
		local[p.PkgPath] = true
	}

	facts := make(map[*types.Func]*funcFacts)
	for fn, info := range ann.Funcs {
		if info.Decl.Body == nil {
			continue
		}
		facts[fn] = scanBody(info.Pkg, info.Decl, local, ann)
	}

	// Breadth-first walk from each root; the BFS tree gives the
	// shortest call chain for the report.
	var diags []analysis.Diagnostic
	seen := make(map[token.Pos]bool) // one report per offending node
	roots := make([]*types.Func, 0, len(ann.Hot))
	for fn := range ann.Hot {
		roots = append(roots, fn)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	for _, root := range roots {
		type qent struct {
			fn    *types.Func
			chain []*types.Func
		}
		visited := map[*types.Func]bool{root: true}
		queue := []qent{{root, []*types.Func{root}}}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			f := facts[cur.fn]
			if f == nil {
				continue
			}
			for _, v := range f.viols {
				if seen[v.pos] {
					continue
				}
				seen[v.pos] = true
				diags = append(diags, analysis.Diagnostic{
					Pos:      v.pos,
					Analyzer: name,
					Message:  fmt.Sprintf("%s (hot path: %s)", v.what, chainString(cur.chain)),
				})
			}
			for _, callee := range f.callees {
				if visited[callee] || ann.Cold[callee] {
					continue
				}
				visited[callee] = true
				chain := append(append([]*types.Func{}, cur.chain...), callee)
				queue = append(queue, qent{callee, chain})
			}
		}
	}
	analysis.SortDiagnostics(prog.Fset, diags)
	return diags
}

func chainString(chain []*types.Func) string {
	parts := make([]string, len(chain))
	for i, f := range chain {
		parts[i] = analysis.FuncDisplayName(f)
	}
	return strings.Join(parts, " -> ")
}

// scanBody collects the forbidden constructs and static callees of one
// function body.
func scanBody(pkg *load.Package, decl *ast.FuncDecl, local map[string]bool, ann *analysis.Annotations) *funcFacts {
	f := &funcFacts{}
	info := pkg.Info

	// Communications of a select that has a default clause are
	// non-blocking; collect them so the walk below can skip them.
	nonblocking := make(map[ast.Node]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		nonblocking[sel] = true
		for _, cl := range sel.Body.List {
			if comm := cl.(*ast.CommClause).Comm; comm != nil {
				nonblocking[comm] = true
				// The receive inside `x := <-ch` / `<-ch`.
				switch c := comm.(type) {
				case *ast.AssignStmt:
					for _, rhs := range c.Rhs {
						nonblocking[ast.Unparen(rhs)] = true
					}
				case *ast.ExprStmt:
					nonblocking[ast.Unparen(c.X)] = true
				}
			}
		}
		return true
	})

	var visit func(n ast.Node, parents []ast.Node) // parents: innermost last
	walk := func(n ast.Node, parents []ast.Node) {
		if n != nil {
			visit(n, parents)
		}
	}
	visit = func(n ast.Node, parents []ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			f.addf(n.Pos(), "spawns a goroutine on the hot path")
		case *ast.SendStmt:
			if !nonblocking[n] {
				f.addf(n.Pos(), "blocking channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonblocking[n] {
				f.addf(n.Pos(), "blocking channel receive")
			}
		case *ast.SelectStmt:
			if !nonblocking[n] {
				f.addf(n.Pos(), "select without a default clause blocks")
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					f.addf(n.Pos(), "ranges over a channel")
				}
			}
		case *ast.FuncLit:
			if !deferredCall(n, parents) {
				f.addf(n.Pos(), "closure allocates (func literal outside a direct defer)")
			}
		case *ast.CompositeLit:
			f.checkComposite(info, n, parents)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := info.Types[idx.X].Type; t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							f.addf(lhs.Pos(), "map write (may grow or rehash; maps are shared-structure territory)")
						}
					}
				}
			}
		case *ast.CallExpr:
			f.checkCall(info, n, local, ann)
		}

		// Recurse with parent tracking.
		ps := append(parents, n)
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return c == n
			}
			visit(c, ps)
			return false
		})
	}
	// Drive the walk from the top-level statements so every node gets
	// exactly one visit with its parent chain.
	for _, stmt := range decl.Body.List {
		walk(stmt, []ast.Node{decl.Body})
	}
	return f
}

func (f *funcFacts) addf(pos token.Pos, format string, args ...any) {
	f.viols = append(f.viols, violation{pos, fmt.Sprintf(format, args...)})
}

// deferredCall reports whether lit is the function of a call that is the
// immediate operand of defer (open-coded, does not escape).
func deferredCall(lit *ast.FuncLit, parents []ast.Node) bool {
	if len(parents) < 2 {
		return false
	}
	call, ok := parents[len(parents)-1].(*ast.CallExpr)
	if !ok || ast.Unparen(call.Fun) != lit {
		return false
	}
	_, ok = parents[len(parents)-2].(*ast.DeferStmt)
	return ok
}

// checkComposite flags composite literals that force heap allocation:
// slice/map literals, and literals whose address is taken.
func (f *funcFacts) checkComposite(info *types.Info, lit *ast.CompositeLit, parents []ast.Node) {
	if len(parents) > 0 {
		if u, ok := parents[len(parents)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			f.addf(lit.Pos(), "&composite literal escapes to the heap")
			return
		}
		// An element of an already-reported &T{...} or []T{...} literal
		// is covered by the outer report.
		switch parents[len(parents)-1].(type) {
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return
		}
	}
	t := info.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		f.addf(lit.Pos(), "slice literal allocates")
	case *types.Map:
		f.addf(lit.Pos(), "map literal allocates")
	}
}

// checkCall classifies one call: builtin allocators, denied standard
// library calls, simulated locks, conversions, or a callee to descend
// into.
func (f *funcFacts) checkCall(info *types.Info, call *ast.CallExpr, local map[string]bool, ann *analysis.Annotations) {
	// Conversions: string<->[]byte/[]rune allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to, from := tv.Type, info.Types[call.Args[0]].Type
			if from != nil && isStringByteConv(to, from) {
				f.addf(call.Pos(), "string/[]byte conversion allocates")
			}
		}
		return
	}

	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	switch o := obj.(type) {
	case *types.Builtin:
		switch o.Name() {
		case "make":
			f.addf(call.Pos(), "make allocates")
		case "new":
			f.addf(call.Pos(), "new allocates")
		case "append":
			f.addf(call.Pos(), "append may grow (use a capacity-guarded push with a //ppc:coldpath grow helper)")
		case "delete":
			f.addf(call.Pos(), "map delete (map mutation on the hot path)")
		case "print", "println":
			f.addf(call.Pos(), "print on the hot path")
		}
	case *types.Func:
		if o.Pkg() == nil { // error.Error and friends from the universe
			return
		}
		if what := denied(o); what != "" {
			f.addf(call.Pos(), what)
			return
		}
		// Descend only into statically-resolved functions of analyzed,
		// non-boundary packages. Interface methods have no body here.
		if !local[o.Pkg().Path()] || ann.Boundary[o.Pkg().Path()] {
			return
		}
		if _, ok := ann.Funcs[o]; ok {
			f.callees = append(f.callees, o)
		}
	}
}

func isStringByteConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteSlice(from)) || (isByteSlice(to) && isStr(from))
}

// denied reports why a standard-library (or internal/locks) call is
// forbidden on a hot path, or "".
func denied(fn *types.Func) string {
	pkg := fn.Pkg().Path()
	name := fn.Name()
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		}
	}
	switch pkg {
	case "fmt":
		return "calls fmt." + name + " (formats and allocates)"
	case "log", "log/slog":
		return "calls " + pkg + "." + name + " (logging locks and allocates)"
	case "hurricane/internal/locks":
		return "uses the simulated shared lock (" + recv + "." + name + ") — the Figure 3 collapse"
	case "sync":
		switch recv {
		case "Mutex", "RWMutex":
			return "acquires sync." + recv + " (" + name + ")"
		case "Map":
			return "uses sync.Map." + name + " (shared map)"
		case "Once":
			return "sync.Once." + name + " may lock"
		case "Cond":
			return "sync.Cond." + name + " blocks or locks"
		case "Pool":
			return "sync.Pool." + name + " (shared pool; use the shard-local pool)"
		case "WaitGroup":
			if name == "Wait" {
				return "sync.WaitGroup.Wait blocks"
			}
		}
		switch name {
		case "OnceFunc", "OnceValue", "OnceValues":
			return "sync." + name + " wraps a lock"
		}
	case "time":
		switch name {
		case "Sleep":
			return "time.Sleep on the hot path"
		case "NewTimer", "NewTicker", "After", "Tick", "AfterFunc":
			return "time." + name + " allocates a timer"
		}
	case "runtime":
		switch name {
		case "Gosched":
			return "runtime.Gosched yields the processor"
		case "GC":
			return "runtime.GC on the hot path"
		}
	}
	return ""
}
