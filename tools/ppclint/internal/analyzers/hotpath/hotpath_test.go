package hotpath_test

import (
	"testing"

	"hurricane/tools/ppclint/internal/analyzers/hotpath"
	"hurricane/tools/ppclint/internal/ppctest"
)

func TestHotpath(t *testing.T) {
	ppctest.Run(t, "testdata/src/hot", hotpath.Analyzer)
}
