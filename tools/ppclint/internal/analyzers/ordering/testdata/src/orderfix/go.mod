module orderfix

go 1.22
