// Package orderfix seeds publish/acquire-ordering violations for the
// ordering analyzer's golden test.
package orderfix

import "sync/atomic"

type slot struct {
	seq atomic.Uint64 //ppc:publishes(val)
	val int
}

// goodPublish is the legal release shape: payload write, then store.
func goodPublish(s *slot, v int) {
	s.val = v
	s.seq.Store(1)
}

// missingWrite seeds violation 1: the store publishes nothing.
func missingWrite(s *slot) {
	s.seq.Store(1) // want "no dominating write to val"
}

// writeAfterStore seeds violation 2: the payload lands after the
// publish — a consumer can observe the sequence word and read junk.
func writeAfterStore(s *slot, v int) {
	s.seq.Store(1) // want "no dominating write to val"
	s.val = v
}

// branchWrite seeds violation 3: the write happens on one branch only,
// so it does not dominate the store.
func branchWrite(s *slot, v int, ok bool) {
	if ok {
		s.val = v
	}
	s.seq.Store(1) // want "no dominating write to val"
}

// crossInstance seeds violation 4: writing another instance's payload
// does not publish ours.
func crossInstance(s, other *slot, v int) {
	other.val = v
	s.seq.Store(1) // want "no dominating write to val"
}

// casPublish is legal: a CAS is a publishing store, and the payload
// write at function entry dominates it.
func casPublish(s *slot, v int) {
	s.val = v
	for {
		old := s.seq.Load()
		if s.seq.CompareAndSwap(old, old+1) {
			return
		}
	}
}

// initSlot is legal via suppression: a construction-time store
// publishes no payload.
func initSlot(s *slot, i uint64) {
	s.seq.Store(i) //ppc:nopublish -- fixture: construction-time sequence init
}

// goodConsume is the legal acquire shape: load the word, then read.
func goodConsume(s *slot) int {
	if s.seq.Load() == 0 {
		return -1
	}
	return s.val
}

// earlyRead seeds violation 5: the payload is read before the word is
// loaded.
func earlyRead(s *slot) int {
	v := s.val // want "read before the first load of its publish word"
	if s.seq.Load() == 0 {
		return -1
	}
	return v
}

// ownerRead is skipped by design: it never loads seq, so it is the
// owning side, not the acquiring side.
func ownerRead(s *slot) int {
	return s.val
}

type ticket struct {
	word atomic.Uint32 //ppc:publishes(a,b)
	a    int
	b    int
}

// armTicket is legal: both payload fields written before the store.
func armTicket(t *ticket, x, y int) {
	t.a = x
	t.b = y
	t.word.Store(1)
}

// halfArm seeds violation 6: only one of the two declared payload
// fields is written.
func halfArm(t *ticket, x int) {
	t.a = x
	t.word.Store(1) // want "no dominating write to b"
}

var (
	_ = goodPublish
	_ = missingWrite
	_ = writeAfterStore
	_ = branchWrite
	_ = crossInstance
	_ = casPublish
	_ = initSlot
	_ = goodConsume
	_ = earlyRead
	_ = ownerRead
	_ = armTicket
	_ = halfArm
)
