// Package ordering verifies the release/acquire pairing that
// //ppc:publishes(f1,f2) declares on an atomic field: the store side
// must write every named payload field before the publishing store, on
// a path that dominates it, and the load side must load the publish
// word before reading the payload.
//
// Checked semantics, precisely:
//
//   - Publish side: for every Store/Swap/Add/CompareAndSwap of an
//     annotated field F through base expression B, each payload field
//     p must have a write to B.p (assignment, address-taken argument,
//     or method call on B.p — which covers in-place mutators) that
//     dominates the store: it precedes the store in a statement list
//     enclosing it, so the store cannot execute without having passed
//     the write. Stores that genuinely carry no payload — sentinel and
//     recycle values, construction-time initialization — are suppressed
//     with an inline `//ppc:nopublish -- reason` on or directly above
//     the store statement.
//
//   - Acquire side: in any function that loads F (Load or
//     CompareAndSwap), every *read* of a payload field must appear
//     after the first load of F in source order. Functions that read
//     payload without ever loading F are skipped — they are upstream
//     owners or received the value via a call, which this
//     intraprocedural analysis cannot order (the publish-side check
//     and the protocol docs carry that weight).
//
// Base expressions are compared structurally with identifiers resolved
// to their objects, so `slot := &r.slots[i]; slot.req = v;
// slot.seq.Store(x)` pairs up, while writes to a *different* instance
// of the same type do not satisfy the check.
package ordering

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hurricane/tools/ppclint/internal/analysis"
)

// Analyzer is the publish/acquire pairing checker.
var Analyzer = &analysis.Analyzer{
	Name: "ordering",
	Doc:  "//ppc:publishes(f1,f2) fields: payload writes dominate the publishing store; loads precede payload reads",
	Run:  run,
}

func run(prog *analysis.Program) []analysis.Diagnostic {
	ann := prog.Annotations
	if len(ann.Publishes) == 0 {
		return nil
	}
	// payload field -> publishing atomic fields
	publishers := make(map[*types.Var][]*analysis.PublishInfo)
	for _, pi := range ann.Publishes {
		for _, p := range pi.Payload {
			publishers[p] = append(publishers[p], pi)
		}
	}

	var diags []analysis.Diagnostic
	funcs := make([]*types.Func, 0, len(ann.Funcs))
	for fn := range ann.Funcs {
		funcs = append(funcs, fn)
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Pos() < funcs[j].Pos() })

	for _, fn := range funcs {
		fi := ann.Funcs[fn]
		if fi.Decl.Body == nil || ann.Boundary[fi.Pkg.PkgPath] {
			continue
		}
		diags = append(diags, checkFunc(prog, publishers, fi)...)
	}
	return diags
}

// access is one syntactic touch of a payload field.
type access struct {
	field   *types.Var
	baseKey string
	node    ast.Node
}

func checkFunc(prog *analysis.Program, publishers map[*types.Var][]*analysis.PublishInfo, fi *analysis.FuncInfo) []analysis.Diagnostic {
	ann := prog.Annotations
	info := fi.Pkg.Info
	body := fi.Decl.Body
	var diags []analysis.Diagnostic

	// Atomic ops on published fields, and payload-field accesses.
	var stores, loads []*analysis.AtomicOp
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op := analysis.AsAtomicOp(info, call)
		if op == nil || ann.Publishes[op.Field] == nil {
			return true
		}
		switch op.Kind {
		case analysis.OpStore, analysis.OpRMW:
			stores = append(stores, op)
		case analysis.OpCAS:
			stores = append(stores, op)
			loads = append(loads, op) // a CAS also observes the word
		case analysis.OpLoad:
			loads = append(loads, op)
		}
		return true
	})
	if len(stores) == 0 && len(loads) == 0 {
		// Fast path: does the function read payload of a field it also
		// loads? Without loads or stores there is nothing to check.
		return nil
	}

	parents := analysis.Parents(body)
	writes, reads := collectAccesses(info, body, publishers)

	// Publish side.
	for _, s := range stores {
		pi := ann.Publishes[s.Field]
		if suppressed(prog.Fset, ann, s.Call.Pos()) {
			continue
		}
		baseKey := analysis.ExprKey(info, s.Base)
		if baseKey == "" {
			continue // no stable identity to pair writes against
		}
		for _, p := range pi.Payload {
			ok := false
			for _, w := range writes {
				if w.field == p && w.baseKey == baseKey && analysis.Dominates(parents, w.node, s.Call) {
					ok = true
					break
				}
			}
			if !ok {
				diags = append(diags, analysis.Diagnostic{
					Pos:      s.Call.Pos(),
					Analyzer: "ordering",
					Message: fmt.Sprintf("store to %s.%s publishes %s, but no dominating write to %s precedes it (use //ppc:nopublish -- reason if this store carries no payload)",
						pi.Owner.Obj().Name(), s.Field.Name(), p.Name(), p.Name()),
				})
			}
		}
	}

	// Acquire side: first load position per published field.
	firstLoad := make(map[*types.Var]token.Pos)
	for _, l := range loads {
		if cur, ok := firstLoad[l.Field]; !ok || l.Call.Pos() < cur {
			firstLoad[l.Field] = l.Call.Pos()
		}
	}
	for _, r := range reads {
		for _, pi := range publishers[r.field] {
			pos, ok := firstLoad[pi.Field]
			if !ok {
				continue // this function never loads the publish word
			}
			if r.node.Pos() < pos {
				diags = append(diags, analysis.Diagnostic{
					Pos:      r.node.Pos(),
					Analyzer: "ordering",
					Message: fmt.Sprintf("payload field %s read before the first load of its publish word %s.%s (acquire ordering)",
						r.field.Name(), pi.Owner.Obj().Name(), pi.Field.Name()),
				})
			}
		}
	}
	return diags
}

// suppressed reports whether a //ppc:nopublish comment sits on the
// store's line or the line directly above it.
func suppressed(fset *token.FileSet, ann *analysis.Annotations, pos token.Pos) bool {
	p := fset.Position(pos)
	lines := ann.NoPublish[p.Filename]
	return lines[p.Line] || lines[p.Line-1]
}

// collectAccesses walks the body once, splitting payload-field touches
// into writes (assignment targets, address-taken arguments, method
// receivers) and reads (everything else).
func collectAccesses(info *types.Info, body *ast.BlockStmt, publishers map[*types.Var][]*analysis.PublishInfo) (writes, reads []access) {
	writeCtx := make(map[ast.Node]bool) // selector roots in write position

	markSubtree := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				writeCtx[sel] = true
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markSubtree(lhs)
			}
		case *ast.IncDecStmt:
			markSubtree(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markSubtree(n.X)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				// method call: the receiver may be mutated in place
				markSubtree(sel.X)
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		fv, _ := s.Obj().(*types.Var)
		if fv == nil || publishers[fv] == nil {
			return true
		}
		a := access{field: fv, baseKey: analysis.ExprKey(info, sel.X), node: sel}
		if writeCtx[sel] {
			writes = append(writes, a)
		} else {
			reads = append(reads, a)
		}
		return true
	})
	return writes, reads
}
