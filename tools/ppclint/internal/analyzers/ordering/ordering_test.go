package ordering_test

import (
	"testing"

	"hurricane/tools/ppclint/internal/analyzers/ordering"
	"hurricane/tools/ppclint/internal/ppctest"
)

func TestOrdering(t *testing.T) {
	ppctest.Run(t, "testdata/src/orderfix", ordering.Analyzer)
}
