package shardconfine_test

import (
	"testing"

	"hurricane/tools/ppclint/internal/analyzers/shardconfine"
	"hurricane/tools/ppclint/internal/ppctest"
)

func TestShardConfine(t *testing.T) {
	ppctest.Run(t, "testdata/src/confine", shardconfine.Analyzer)
}
