// Package shardconfine enforces the paper's locality discipline on
// data: a struct field tagged //ppc:shard-owned belongs to its shard
// (its declaring type) and may be touched only by methods of that type,
// by functions explicitly annotated //ppc:shard(Type), or inside a
// composite literal constructing the owner (pre-publication
// initialization). Any other access is the "remote pool touch" the
// paper forbids — the access pattern that reintroduces cache-coherence
// (or, on Hector, uncached-remote) traffic on the call path.
package shardconfine

import (
	"fmt"
	"go/ast"
	"go/types"

	"hurricane/tools/ppclint/internal/analysis"
)

// name is the analyzer name used in diagnostics.
const name = "shardconfine"

// Analyzer is the shard-confinement checker.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "//ppc:shard-owned fields may be accessed only by their owner type's methods or //ppc:shard(T) functions",
	Run:  run,
}

func run(prog *analysis.Program) []analysis.Diagnostic {
	ann := prog.Annotations
	if len(ann.Owned) == 0 {
		return nil
	}
	var diags []analysis.Diagnostic
	for fn, info := range ann.Funcs {
		if info.Decl.Body == nil {
			continue
		}
		pkgInfo := info.Pkg.Info
		allowed := allowedOwners(fn, ann)
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pkgInfo.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			fv, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			fi := ann.Owned[fv]
			if fi == nil {
				return true
			}
			if allowed[fi.Owner.Obj().Name()] {
				return true
			}
			diags = append(diags, analysis.Diagnostic{
				Pos:      sel.Sel.Pos(),
				Analyzer: name,
				Message: fmt.Sprintf("%s accesses shard-owned field %s.%s (allowed only from %s methods or //ppc:shard(%s) functions)",
					analysis.FuncDisplayName(fn), fi.Owner.Obj().Name(), fv.Name(),
					fi.Owner.Obj().Name(), fi.Owner.Obj().Name()),
			})
			return true
		})
	}
	analysis.SortDiagnostics(prog.Fset, diags)
	return diags
}

// allowedOwners returns the set of owner type names fn may touch: its
// own receiver type plus every //ppc:shard(T) grant.
func allowedOwners(fn *types.Func, ann *analysis.Annotations) map[string]bool {
	out := make(map[string]bool)
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			out[n.Obj().Name()] = true
		}
	}
	for _, name := range ann.ShardOf[fn] {
		out[name] = true
	}
	return out
}
