// Package confine is the shardconfine analyzer's fixture.
package confine

// Shard owns a per-processor free list.
type Shard struct {
	id int

	//ppc:shard-owned
	free []int

	//ppc:shard-owned
	hits int

	// Slots is exported so the cross-package case is expressible.
	//
	//ppc:shard-owned
	Slots []int
}

// Pop is an owner method: touching free and hits is legal.
func (s *Shard) Pop() (int, bool) {
	if len(s.free) == 0 {
		return 0, false
	}
	v := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.hits++
	return v, true
}

// NewShard constructs a shard; keyed composite-literal initialization
// of owned fields is pre-publication and therefore legal.
func NewShard(id int, seed []int) *Shard {
	return &Shard{id: id, free: seed}
}

// drainInto is explicitly granted access.
//
//ppc:shard(Shard)
func drainInto(s *Shard, out []int) []int {
	out = append(out, s.free...)
	s.free = s.free[:0]
	return out
}

// Steal is the forbidden remote-pool touch: a free function reaching
// into another shard's owned state.
func Steal(victim *Shard) (int, bool) {
	if len(victim.free) == 0 { // want "accesses shard-owned field Shard.free"
		return 0, false
	}
	v := victim.free[0]          // want "accesses shard-owned field Shard.free"
	victim.free = victim.free[1:] // want "accesses shard-owned field Shard.free" "accesses shard-owned field Shard.free"
	return v, true
}

// Audit reads an owned counter without a grant.
func Audit(s *Shard) int {
	return s.hits + s.id // want "accesses shard-owned field Shard.hits"
}

var _ = drainInto
