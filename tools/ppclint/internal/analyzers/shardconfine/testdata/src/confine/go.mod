module confine

go 1.22
