// Package other violates shard confinement from outside the owning
// package: object identity for the owned field must hold across the
// package boundary.
package other

import "confine"

// Peek reaches across the package boundary into a shard's owned state.
func Peek(s *confine.Shard) int {
	return len(s.Slots) // want "accesses shard-owned field Shard.Slots"
}
