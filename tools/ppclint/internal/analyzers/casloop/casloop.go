// Package casloop checks CAS retry-loop discipline for the lock-free
// protocols: a CompareAndSwap inside a `for` loop must re-read its
// witness (the expected-value argument) on every iteration — a witness
// read once outside the loop goes stale and the CAS livelocks or,
// worse, succeeds against a recycled value; the loop must not call
// cold or blocking functions except on a path that exits the loop
// (return/break); and a loop that re-reads state *through* a pointer
// witness before CASing it (the Treiber-pop shape) is ABA-sensitive
// and must be annotated //ppc:aba(tag), naming the generation field
// that protects it — or `gc` when garbage collection rules out address
// reuse.
//
// Scope and approximations: only `for` statements are considered retry
// loops (`range` loops iterate, they don't retry); the exit-path
// exemption fires when any enclosing statement list inside the loop
// ends in return/break, a sound-enough stand-in for "this branch
// leaves the loop"; blocking detection covers channel operations,
// selects without default, time.Sleep, sync lock methods, and
// fmt/log output, matching the hotpath analyzer's taxonomy.
package casloop

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hurricane/tools/ppclint/internal/analysis"
)

// Analyzer is the CAS retry-loop checker.
var Analyzer = &analysis.Analyzer{
	Name: "casloop",
	Doc:  "CAS retry loops re-read their witness, stay hot, and declare ABA protection with //ppc:aba(tag)",
	Run:  run,
}

func run(prog *analysis.Program) []analysis.Diagnostic {
	ann := prog.Annotations
	var diags []analysis.Diagnostic

	funcs := make([]*types.Func, 0, len(ann.Funcs))
	for fn := range ann.Funcs {
		funcs = append(funcs, fn)
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Pos() < funcs[j].Pos() })

	for _, fn := range funcs {
		fi := ann.Funcs[fn]
		if fi.Decl.Body == nil || ann.Boundary[fi.Pkg.PkgPath] {
			continue
		}
		diags = append(diags, checkFunc(prog, fn, fi)...)
	}
	return diags
}

func checkFunc(prog *analysis.Program, fn *types.Func, fi *analysis.FuncInfo) []analysis.Diagnostic {
	ann := prog.Annotations
	info := fi.Pkg.Info
	body := fi.Decl.Body
	parents := analysis.Parents(body)
	var diags []analysis.Diagnostic

	// Gather every CAS inside a for loop, keyed by its innermost loop.
	type casSite struct {
		op   *analysis.AtomicOp
		loop *ast.ForStmt
	}
	var sites []casSite
	loops := make(map[*ast.ForStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op := analysis.AsAtomicOp(info, call)
		if op == nil || op.Kind != analysis.OpCAS {
			return true
		}
		if loop := enclosingFor(parents, call); loop != nil {
			sites = append(sites, casSite{op, loop})
			loops[loop] = true
		}
		return true
	})

	for _, s := range sites {
		// Witness staleness: some local variable the expected-value
		// argument depends on must be reassigned inside the loop.
		wvars := localVars(info, s.op.Old)
		if len(wvars) > 0 && !anyAssignedIn(info, s.loop, wvars) {
			diags = append(diags, analysis.Diagnostic{
				Pos:      s.op.Call.Pos(),
				Analyzer: "casloop",
				Message: "CAS witness " + types.ExprString(s.op.Old) +
					" is not re-read inside the retry loop (stale-value CAS)",
			})
		}

		// ABA shape: pointer witness read through before the CAS.
		if obj := pointerWitness(info, s.op.Old); obj != nil && readsThrough(info, s.loop, obj, s.op.Call.Pos()) {
			if ann.ABA[fn] == nil {
				diags = append(diags, analysis.Diagnostic{
					Pos:      s.op.Call.Pos(),
					Analyzer: "casloop",
					Message: "CAS loop reads through its pointer witness " + types.ExprString(s.op.Old) +
						" (ABA-sensitive); annotate " + analysis.FuncDisplayName(fn) +
						" //ppc:aba(tag) naming the protecting generation field, or //ppc:aba(gc)",
				})
			}
		}
	}

	// An //ppc:aba annotation on a function with no CAS retry loop at
	// all is drift.
	if a := ann.ABA[fn]; a != nil && len(sites) == 0 {
		diags = append(diags, analysis.Diagnostic{
			Pos:      a.Pos,
			Analyzer: "casloop",
			Message:  "//ppc:aba on " + analysis.FuncDisplayName(fn) + " but it contains no CAS retry loop",
		})
	}

	// Cold/blocking work inside each CAS loop, except on exit paths.
	loopList := make([]*ast.ForStmt, 0, len(loops))
	for l := range loops {
		loopList = append(loopList, l)
	}
	sort.Slice(loopList, func(i, j int) bool { return loopList[i].Pos() < loopList[j].Pos() })
	for _, loop := range loopList {
		diags = append(diags, checkLoopBody(ann, info, parents, loop)...)
	}

	return diags
}

// checkLoopBody flags cold or blocking constructs inside a CAS retry
// loop unless they sit on a path that exits the loop.
func checkLoopBody(ann *analysis.Annotations, info *types.Info, parents map[ast.Node]ast.Node, loop *ast.ForStmt) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	flag := func(n ast.Node, msg string) {
		if onExitPath(parents, n, loop) {
			return
		}
		diags = append(diags, analysis.Diagnostic{Pos: n.Pos(), Analyzer: "casloop", Message: msg + " inside a CAS retry loop"})
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure's body runs elsewhere
		case *ast.ForStmt:
			if n != loop && loops(info, n) {
				return false // nested CAS loop judged on its own
			}
		case *ast.SendStmt:
			flag(n, "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				flag(n, "channel receive")
			}
		case *ast.SelectStmt:
			if !hasDefault(n) {
				flag(n, "blocking select")
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil {
				switch {
				case ann.Cold[fn]:
					flag(n, "call to //ppc:coldpath "+analysis.FuncDisplayName(fn))
				case isBlockingStdlib(fn):
					flag(n, "call to "+stdlibName(fn))
				}
			}
		}
		return true
	})
	return diags
}

// loops reports whether a nested for statement contains its own CAS.
func loops(info *types.Info, f *ast.ForStmt) bool {
	found := false
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op := analysis.AsAtomicOp(info, call); op != nil && op.Kind == analysis.OpCAS {
				found = true
			}
		}
		return !found
	})
	return found
}

// enclosingFor finds the innermost for statement containing n, not
// crossing function-literal boundaries.
func enclosingFor(parents map[ast.Node]ast.Node, n ast.Node) *ast.ForStmt {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		switch cur := cur.(type) {
		case *ast.FuncLit:
			return nil
		case *ast.ForStmt:
			return cur
		}
	}
	return nil
}

// localVars collects the local (non-field, non-package) variables an
// expression depends on.
func localVars(info *types.Info, e ast.Expr) []*types.Var {
	if e == nil {
		return nil
	}
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
			return true // package-level: not a per-iteration witness
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// anyAssignedIn reports whether any of vars is (re)assigned inside the
// loop body or post statement.
func anyAssignedIn(info *types.Info, loop *ast.ForStmt, vars []*types.Var) bool {
	want := make(map[*types.Var]bool, len(vars))
	for _, v := range vars {
		want[v] = true
	}
	found := false
	mark := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if v, ok := info.Defs[id].(*types.Var); ok && want[v] {
			found = true
		}
		if v, ok := info.Uses[id].(*types.Var); ok && want[v] {
			found = true
		}
	}
	scan := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					mark(n.X) // address taken: may be written through
				}
			}
			return true
		})
	}
	scan(loop.Body)
	scan(loop.Post)
	return found
}

// pointerWitness returns the object of a plain pointer-typed witness
// identifier, or nil.
func pointerWitness(info *types.Info, e ast.Expr) *types.Var {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer:
		return v
	}
	if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return v
	}
	return nil
}

// readsThrough reports whether the loop body selects a field through
// obj (e.g. top.next) before position before — the re-validation read
// that makes a CAS ABA-sensitive.
func readsThrough(info *types.Info, loop *ast.ForStmt, obj *types.Var, before token.Pos) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Pos() >= before {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && v == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// onExitPath reports whether n sits on a path that exits the loop: its
// own statement is a return, or an enclosing statement list (inside
// the loop) ends in return or break.
func onExitPath(parents map[ast.Node]ast.Node, n ast.Node, loop *ast.ForStmt) bool {
	for cur := n; cur != nil && cur != loop; cur = parents[cur] {
		if _, ok := cur.(*ast.ReturnStmt); ok {
			return true
		}
		stmt, ok := cur.(ast.Stmt)
		if !ok {
			continue
		}
		var list []ast.Stmt
		switch c := parents[stmt].(type) {
		case *ast.BlockStmt:
			list = c.List
		case *ast.CaseClause:
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		default:
			continue
		}
		if len(list) == 0 {
			continue
		}
		switch last := list[len(list)-1].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			if last.Tok == token.BREAK {
				return true
			}
		}
	}
	return false
}

// calleeFunc resolves a call's static callee.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func stdlibPkg(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

func stdlibName(fn *types.Func) string {
	return stdlibPkg(fn) + "." + fn.Name()
}

// isBlockingStdlib classifies the standard-library calls that have no
// place inside a CAS retry loop: sleeping, locking, and output.
func isBlockingStdlib(fn *types.Func) bool {
	switch stdlibPkg(fn) {
	case "time":
		return fn.Name() == "Sleep"
	case "sync":
		switch fn.Name() {
		case "Lock", "Unlock", "RLock", "RUnlock", "Wait", "Do":
			return true
		}
	case "fmt":
		return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
	case "log":
		return true
	}
	return false
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
