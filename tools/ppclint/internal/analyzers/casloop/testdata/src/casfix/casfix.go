// Package casfix seeds CAS retry-loop violations for the casloop
// analyzer's golden test.
package casfix

import "sync/atomic"

type counter struct {
	n atomic.Uint64
}

// refill is a cold helper for the in-loop call checks.
//
//ppc:coldpath -- fixture: slow-path refill, off the retry path
func refill(c *counter) {}

// staleWitness seeds violation 1: the witness is read once, outside
// the loop, and never refreshed — a failing CAS retries forever
// against a stale expectation.
func staleWitness(c *counter) {
	old := c.n.Load()
	for {
		if c.n.CompareAndSwap(old, old+1) { // want "witness old is not re-read inside the retry loop"
			return
		}
	}
}

// freshWitness is the legal shape: re-read every iteration.
func freshWitness(c *counter) {
	for {
		old := c.n.Load()
		if c.n.CompareAndSwap(old, old+1) {
			return
		}
	}
}

// coldInLoop seeds violation 2: a //ppc:coldpath call on the retry
// path itself.
func coldInLoop(c *counter) {
	for {
		old := c.n.Load()
		refill(c) // want "call to //ppc:coldpath refill inside a CAS retry loop"
		if c.n.CompareAndSwap(old, old+1) {
			return
		}
	}
}

// blockInLoop seeds violation 3: a blocking channel receive on the
// retry path.
func blockInLoop(c *counter, ch chan int) {
	for {
		old := c.n.Load()
		<-ch // want "channel receive inside a CAS retry loop"
		if c.n.CompareAndSwap(old, old+1) {
			return
		}
	}
}

// coldOnExit is legal: the cold call sits in a block that ends by
// leaving the loop, so it runs at most once.
func coldOnExit(c *counter) {
	for {
		old := c.n.Load()
		if c.n.CompareAndSwap(old, old+1) {
			refill(c)
			return
		}
	}
}

type node struct {
	next atomic.Pointer[node]
	val  int
}

type stack struct {
	head atomic.Pointer[node]
}

// pop seeds violation 4: the Treiber-pop shape — reading next
// *through* the pointer witness before CASing it — without declaring
// what defeats ABA.
func (s *stack) pop() *node {
	for {
		top := s.head.Load()
		if top == nil {
			return nil
		}
		next := top.next.Load()
		if s.head.CompareAndSwap(top, next) { // want "ABA-sensitive"
			return top
		}
	}
}

// popAnnotated is the same shape made legal by declaring the
// protection.
//
//ppc:aba(gc) -- fixture: the collector rules out address reuse
func (s *stack) popAnnotated() *node {
	for {
		top := s.head.Load()
		if top == nil {
			return nil
		}
		next := top.next.Load()
		if s.head.CompareAndSwap(top, next) {
			return top
		}
	}
}

// push is ABA-safe: the witness is only used as a value, never read
// through.
func (s *stack) push(n *node) {
	for {
		top := s.head.Load()
		n.next.Store(top)
		if s.head.CompareAndSwap(top, n) {
			return
		}
	}
}

type flagbox struct {
	b atomic.Bool
}

// literalWitness is legal: a constant witness is a state transition,
// not a read-check-update.
func literalWitness(c *flagbox) {
	for i := 0; i < 3; i++ {
		if c.b.CompareAndSwap(false, true) {
			return
		}
	}
}

// decoration seeds violation 5: //ppc:aba on a function with no CAS
// retry loop is drift.
//
//ppc:aba(gen) -- fixture: annotation with nothing to protect // want "no CAS retry loop"
func decoration(c *counter) {
	c.n.Add(1)
}

var (
	_ = staleWitness
	_ = freshWitness
	_ = coldInLoop
	_ = blockInLoop
	_ = coldOnExit
	_ = literalWitness
	_ = decoration
)
