module casfix

go 1.22
