package casloop_test

import (
	"testing"

	"hurricane/tools/ppclint/internal/analyzers/casloop"
	"hurricane/tools/ppclint/internal/ppctest"
)

func TestCASLoop(t *testing.T) {
	ppctest.Run(t, "testdata/src/casfix", casloop.Analyzer)
}
