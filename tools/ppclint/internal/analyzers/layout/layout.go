// Package layout checks //ppc:padded structs against their real field
// offsets and sizes (go/types.Sizes for the gc compiler on the host
// architecture), replacing hand-counted `_ [56]byte` pads with a
// machine check. Three properties are enforced:
//
//  1. Every //ppc:hotline field occupies 64-byte cache lines that no
//     other named field touches, except fields sharing the same
//     //ppc:hotline(group) — a group documents *intentional* sharing
//     (fields written together by one owner).
//  2. A //ppc:padded struct (or any struct that transitively embeds
//     one) used as a slice or array element must have a size that is a
//     multiple of 64, or consecutive elements shear each other's lines.
//  3. A field whose type is (or transitively embeds) a //ppc:padded
//     struct must itself sit at a 64-byte-aligned offset, or the inner
//     padding no longer lines up with real cache lines.
//
// Line arithmetic assumes 64-byte-aligned allocation bases; the Go
// heap aligns large objects to size classes, so the pads give the
// strongest isolation the runtime can offer rather than a hard
// guarantee.
package layout

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"

	"hurricane/tools/ppclint/internal/analysis"
)

const lineSize = 64

// Analyzer is the layout checker.
var Analyzer = &analysis.Analyzer{
	Name: "layout",
	Doc:  "//ppc:padded structs: //ppc:hotline fields occupy isolated 64-byte lines, verified against real offsets",
	Run:  run,
}

func sizesFor() types.Sizes {
	if s := types.SizesFor("gc", runtime.GOARCH); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

// span is the byte extent [lo, hi] of a field within its struct.
type span struct{ lo, hi int64 }

func (s span) lines() (int64, int64) { return s.lo / lineSize, s.hi / lineSize }

func (s span) overlapsLine(o span) bool {
	alo, ahi := s.lines()
	blo, bhi := o.lines()
	return alo <= bhi && blo <= ahi
}

type fieldLayout struct {
	v    *types.Var
	span span
	hot  *analysis.HotlineInfo // nil if not //ppc:hotline
	pad  bool                  // blank (`_`) field
}

func run(prog *analysis.Program) []analysis.Diagnostic {
	sizes := sizesFor()
	ann := prog.Annotations
	var diags []analysis.Diagnostic

	// The hot-layout closure: padded structs plus every struct that
	// (transitively, through direct fields and arrays) contains one.
	hot := hotLayoutClosure(prog, sizes)

	// Sorted iteration for stable output.
	padded := make([]*analysis.PaddedInfo, 0, len(ann.Padded))
	for _, pi := range ann.Padded {
		padded = append(padded, pi)
	}
	sort.Slice(padded, func(i, j int) bool { return padded[i].Pos < padded[j].Pos })

	for _, pi := range padded {
		st, ok := pi.Owner.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		name := pi.Owner.Obj().Name()
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		if len(fields) == 0 {
			continue
		}
		offsets := sizes.Offsetsof(fields)
		var fl []fieldLayout
		hasHot := false
		for i, f := range fields {
			sz := sizes.Sizeof(f.Type())
			if sz == 0 {
				continue
			}
			l := fieldLayout{v: f, span: span{offsets[i], offsets[i] + sz - 1}, pad: f.Name() == "_"}
			if h := ann.Hotline[f]; h != nil {
				l.hot, hasHot = h, true
			}
			fl = append(fl, l)
		}
		if !hasHot {
			diags = append(diags, analysis.Diagnostic{
				Pos:      pi.Pos,
				Analyzer: "layout",
				Message:  fmt.Sprintf("struct %s is //ppc:padded but declares no //ppc:hotline field to isolate", name),
			})
			continue
		}
		for i := 0; i < len(fl); i++ {
			for j := i + 1; j < len(fl); j++ {
				a, b := fl[i], fl[j]
				if a.hot == nil && b.hot == nil {
					continue
				}
				if a.pad || b.pad {
					continue
				}
				if a.hot != nil && b.hot != nil && a.hot.Group == b.hot.Group {
					continue
				}
				if !a.span.overlapsLine(b.span) {
					continue
				}
				// Report at the hotline field (the declared intent).
				h, o := a, b
				if h.hot == nil {
					h, o = b, a
				}
				line, _ := o.span.lines()
				if hl, _ := h.span.lines(); hl > line {
					line = hl
				}
				diags = append(diags, analysis.Diagnostic{
					Pos:      h.hot.Pos,
					Analyzer: "layout",
					Message: fmt.Sprintf("//ppc:hotline field %s.%s (bytes %d-%d) shares cache line %d with %s (bytes %d-%d)",
						name, h.v.Name(), h.span.lo, h.span.hi, line, o.v.Name(), o.span.lo, o.span.hi),
				})
			}
		}
	}

	// Rule 3: hot-layout fields must be 64-byte aligned inside any
	// struct that contains them.
	structs := namedStructs(prog)
	for _, ns := range structs {
		st := ns.named.Underlying().(*types.Struct)
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		if len(fields) == 0 {
			continue
		}
		offsets := sizes.Offsetsof(fields)
		for i, f := range fields {
			inner := hotLayoutElem(f.Type(), hot)
			if inner == nil {
				continue
			}
			if offsets[i]%lineSize != 0 {
				diags = append(diags, analysis.Diagnostic{
					Pos:      f.Pos(),
					Analyzer: "layout",
					Message: fmt.Sprintf("field %s.%s places //ppc:padded %s at offset %d (not a multiple of %d); its internal line isolation is sheared",
						ns.named.Obj().Name(), f.Name(), inner.Obj().Name(), offsets[i], lineSize),
				})
			}
		}
	}

	// Rule 2: slice/array elements of hot-layout structs need
	// 64-multiple sizes. One diagnostic per offending element type, at
	// its declaration.
	flagged := make(map[*types.Named]token.Pos)
	for _, pkg := range prog.Packages {
		for expr, tv := range pkg.Info.Types {
			var elem types.Type
			switch t := tv.Type.Underlying().(type) {
			case *types.Slice:
				elem = t.Elem()
			case *types.Array:
				elem = t.Elem()
			default:
				continue
			}
			n, ok := elem.(*types.Named)
			if !ok || !hot[n] {
				continue
			}
			if sizes.Sizeof(n)%lineSize == 0 {
				continue
			}
			if prev, ok := flagged[n]; !ok || expr.Pos() < prev {
				flagged[n] = expr.Pos()
			}
		}
	}
	type flaggedElem struct {
		n   *types.Named
		pos token.Pos
	}
	var felems []flaggedElem
	for n, pos := range flagged {
		felems = append(felems, flaggedElem{n, pos})
	}
	sort.Slice(felems, func(i, j int) bool { return felems[i].pos < felems[j].pos })
	for _, fe := range felems {
		diags = append(diags, analysis.Diagnostic{
			Pos:      fe.pos,
			Analyzer: "layout",
			Message: fmt.Sprintf("%s (size %d, //ppc:padded layout) is a slice/array element but its size is not a multiple of %d; consecutive elements shear cache lines",
				fe.n.Obj().Name(), sizes.Sizeof(fe.n), lineSize),
		})
	}
	return diags
}

// hotLayoutElem unwraps arrays and reports the hot-layout named struct
// a field type directly contains, if any.
func hotLayoutElem(t types.Type, hot map[*types.Named]bool) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Named:
			if hot[u] {
				return u
			}
			return nil
		case *types.Array:
			t = u.Elem()
		default:
			return nil
		}
	}
}

type namedStruct struct {
	named *types.Named
	spec  *ast.TypeSpec
}

// namedStructs collects every named struct type declared in the
// analyzed packages, in declaration order.
func namedStructs(prog *analysis.Program) []namedStruct {
	var out []namedStruct
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				if _, ok := ts.Type.(*ast.StructType); !ok {
					return true
				}
				tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					return true
				}
				if named, ok := tn.Type().(*types.Named); ok {
					out = append(out, namedStruct{named: named, spec: ts})
				}
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.Pos() < out[j].spec.Pos() })
	return out
}

// hotLayoutClosure computes the set of named structs that are
// //ppc:padded or transitively contain a //ppc:padded struct by value.
func hotLayoutClosure(prog *analysis.Program, sizes types.Sizes) map[*types.Named]bool {
	hot := make(map[*types.Named]bool)
	for n := range prog.Annotations.Padded {
		hot[n] = true
	}
	structs := namedStructs(prog)
	for changed := true; changed; {
		changed = false
		for _, ns := range structs {
			if hot[ns.named] {
				continue
			}
			st := ns.named.Underlying().(*types.Struct)
			for i := 0; i < st.NumFields(); i++ {
				if hotLayoutElem(st.Field(i).Type(), hot) != nil {
					hot[ns.named] = true
					changed = true
					break
				}
			}
		}
	}
	return hot
}
