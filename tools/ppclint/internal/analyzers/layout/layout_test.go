package layout_test

import (
	"testing"

	"hurricane/tools/ppclint/internal/analyzers/layout"
	"hurricane/tools/ppclint/internal/ppctest"
)

func TestLayout(t *testing.T) {
	ppctest.Run(t, "testdata/src/layoutfix", layout.Analyzer)
}
