module layoutfix

go 1.22
