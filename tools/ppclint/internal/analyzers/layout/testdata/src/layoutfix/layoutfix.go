// Package layoutfix seeds cache-line layout violations for the layout
// analyzer's golden test. Field sizes are arch-independent (uint64,
// explicit byte pads) so the expected offsets hold on any 64-bit
// target.
package layoutfix

import "sync/atomic"

// okCounters is laid out correctly: the hot counter owns line 1.
//
//ppc:padded
type okCounters struct {
	meta uint64
	_    [56]byte
	hits atomic.Uint64 //ppc:hotline
	_    [56]byte
}

var okStripes []okCounters // size 128 — a legal slice element

// shared seeds violation 1: the hot counter shares line 0 with a
// plain field.
//
//ppc:padded
type shared struct {
	owner uint64
	hits  atomic.Uint64 //ppc:hotline // want "shares cache line 0 with owner"
	_     [48]byte
}

// twoHot seeds violation 2: two hot counters in different (implicit
// singleton) groups land on the same line.
//
//ppc:padded
type twoHot struct {
	a atomic.Uint64 //ppc:hotline // want "shares cache line 0 with b"
	b atomic.Uint64 //ppc:hotline
	_ [48]byte
}

// grouped is legal: the two fields declare intentional sharing by
// naming the same group.
//
//ppc:padded
type grouped struct {
	x atomic.Uint64 //ppc:hotline(pair)
	y atomic.Uint64 //ppc:hotline(pair)
	_ [48]byte
}

// inert seeds violation 3: padded with nothing to isolate.
//
//ppc:padded
type inert struct { // want "//ppc:padded but declares no //ppc:hotline"
	n uint64
	_ [56]byte
}

// stripe seeds violation 4: size 56 is not a multiple of 64, so
// consecutive slice elements shear each other's lines.
//
//ppc:padded
type stripe struct {
	n atomic.Uint64 //ppc:hotline
	_ [48]byte
}

var stripes []stripe // want "size 56.*not a multiple of 64"

// padded128 is internally clean; the violations below are about where
// it is placed.
//
//ppc:padded
type padded128 struct {
	hits atomic.Uint64 //ppc:hotline
	_    [56]byte
	cold uint64
	_    [56]byte
}

// holder seeds violation 5: embedding a padded struct at offset 8
// shears its internal line isolation.
type holder struct {
	tag   uint64
	inner padded128 // want "offset 8 \(not a multiple of 64\)"
}

// alignedHolder is the legal form: the padded struct starts on a line
// boundary.
type alignedHolder struct {
	tag   uint64
	_     [56]byte
	inner padded128
}

var (
	_ = okStripes
	_ = stripes
	_ = shared{}
	_ = twoHot{}
	_ = grouped{}
	_ = inert{}
	_ = holder{}
	_ = alignedHolder{}
)
