package atomicfield_test

import (
	"testing"

	"hurricane/tools/ppclint/internal/analyzers/atomicfield"
	"hurricane/tools/ppclint/internal/ppctest"
)

func TestAtomicField(t *testing.T) {
	ppctest.Run(t, "testdata/src/atomicfix", atomicfield.Analyzer)
}
