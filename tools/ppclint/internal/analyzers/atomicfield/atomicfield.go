// Package atomicfield enforces consistent atomicity on fields tagged
// //ppc:atomic: either the field's type is one of the sync/atomic
// wrapper types (atomic.Int64 and friends — always safe), or every
// access must pass &field directly to a sync/atomic function. A plain
// read racing an atomic write is exactly the mixed-access bug class the
// kill/admission path had before the increment-then-check protocol was
// introduced; this analyzer makes the fix structural.
//
// Construction-time keyed composite literals (Owner{field: v}) are not
// selector expressions and are therefore permitted: a value that has
// not been published yet cannot race.
package atomicfield

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hurricane/tools/ppclint/internal/analysis"
)

// name is the analyzer name used in diagnostics.
const name = "atomicfield"

// Analyzer is the atomic-access checker.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "//ppc:atomic fields must be sync/atomic types or accessed only through sync/atomic calls",
	Run:  run,
}

func run(prog *analysis.Program) []analysis.Diagnostic {
	ann := prog.Annotations
	if len(ann.Atomic) == 0 {
		return nil
	}
	var diags []analysis.Diagnostic
	for fn, info := range ann.Funcs {
		if info.Decl.Body == nil {
			continue
		}
		pkgInfo := info.Pkg.Info

		// Selector expressions whose address feeds a sync/atomic call
		// directly are the sanctioned access form.
		sanctioned := make(map[*ast.SelectorExpr]bool)
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkgInfo, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
					if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
						sanctioned[sel] = true
					}
				}
			}
			return true
		})

		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pkgInfo.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			fv, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			fi := ann.Atomic[fv]
			if fi == nil || atomicWrapperType(fv.Type()) || sanctioned[sel] {
				return true
			}
			diags = append(diags, analysis.Diagnostic{
				Pos:      sel.Sel.Pos(),
				Analyzer: name,
				Message: fmt.Sprintf("%s: plain access to //ppc:atomic field %s.%s (use sync/atomic, or an atomic.%s-style type)",
					analysis.FuncDisplayName(fn), fi.Owner.Obj().Name(), fv.Name(),
					wrapperSuggestion(fv.Type())),
			})
			return true
		})
	}
	analysis.SortDiagnostics(prog.Fset, diags)
	return diags
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// atomicWrapperType reports whether t is one of the sync/atomic wrapper
// types (atomic.Int64, atomic.Pointer[T], ...).
func atomicWrapperType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// wrapperSuggestion names the atomic wrapper matching the field's type.
func wrapperSuggestion(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint, types.Uintptr:
		return "Uint64"
	case types.Bool:
		return "Bool"
	}
	return "Value"
}
