// Package atomicfix is the atomicfield analyzer's fixture.
package atomicfix

import "sync/atomic"

// Counter mixes the two sanctioned shapes and a raw field.
type Counter struct {
	//ppc:atomic
	n int64

	//ppc:atomic
	flag atomic.Bool

	plain int64
}

// Inc uses the sanctioned &field-into-sync/atomic form.
func (c *Counter) Inc() int64 {
	return atomic.AddInt64(&c.n, 1)
}

// Load passes the address through parens; still sanctioned.
func (c *Counter) Load() int64 {
	return atomic.LoadInt64((&c.n))
}

// Set uses the wrapper type; wrapper-typed fields are always legal.
func (c *Counter) Set(v bool) {
	c.flag.Store(v)
}

// RawRead is the mixed-access bug: a plain read racing atomic writers.
func (c *Counter) RawRead() int64 {
	return c.n // want "plain access to //ppc:atomic field Counter.n .use sync/atomic, or an atomic.Int64-style type."
}

// RawWrite is the same bug on the write side, from a non-method.
func RawWrite(c *Counter, v int64) {
	c.n = v      // want "plain access to //ppc:atomic field Counter.n"
	c.plain = v  // untagged field: not this analyzer's business
}
