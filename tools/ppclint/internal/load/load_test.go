package load

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadErrorNamesPackage pins the load-failure contract: when a
// pattern fails to load, the error names the failing package rather
// than exiting opaquely (the driver prepends the pattern list).
func TestLoadErrorNamesPackage(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module brokenfix\n\ngo 1.22\n")
	write("a.go", "package a\n\nimport \"no/such/dep\"\n\nvar _ = dep.X\n")

	_, err := Load(dir, []string{"./..."})
	if err == nil {
		t.Fatal("Load succeeded on a package with a missing import")
	}
	if !strings.Contains(err.Error(), "no/such/dep") {
		t.Fatalf("load error does not name the failing package: %v", err)
	}
}

// TestLoadOK pins the happy path for the same tiny module shape.
func TestLoadOK(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module okfix\n\ngo 1.22\n")
	write("a.go", "package a\n\nimport \"sync/atomic\"\n\nvar N atomic.Uint64\n")

	prog, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Packages) != 1 || prog.Packages[0].PkgPath != "okfix" {
		t.Fatalf("unexpected packages: %+v", prog.Packages)
	}
}
