// Package load builds a type-checked view of a Go module using only the
// standard library: package metadata and export data come from
// `go list -json -export -deps`, module-local packages are parsed from
// source (comments included, so //ppc: annotations survive) and
// type-checked bottom-up sharing one object world, and standard-library
// dependencies are imported from compiled export data. This is a small,
// dependency-free stand-in for golang.org/x/tools/go/packages, which
// this repository cannot vendor (the build environment is offline and
// the root module stays stdlib-only).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module-local package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Program is the loaded set of module-local packages, in dependency
// order, sharing one FileSet and one types object world (an identifier
// in package A referring to a function in package B resolves to the
// same *types.Func object that B's own declarations define).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	Export     string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// Load type-checks the packages matching patterns in the module rooted
// at (or containing) dir. The go tool is invoked with GOWORK=off so the
// analyzed module is exactly the one owning dir, regardless of any
// workspace in use.
func Load(dir string, patterns []string) (*Program, error) {
	args := append([]string{"list", "-e", "-json", "-export", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	byPath := make(map[string]*listedPkg)
	var order []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		lp := p
		byPath[lp.ImportPath] = &lp
		order = append(order, &lp)
	}

	for _, p := range order {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		for _, de := range p.DepsErrors {
			if de != nil {
				return nil, fmt.Errorf("package %s (dependency): %s", p.ImportPath, de.Err)
			}
		}
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		fset:    fset,
		listed:  byPath,
		checked: make(map[string]*types.Package),
	}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup)

	// Local (non-standard-library) packages are type-checked from
	// source, bottom-up. `go list -deps` already emits dependencies
	// before dependents, but sort defensively anyway.
	var local []*listedPkg
	for _, p := range order {
		if !p.Standard {
			local = append(local, p)
		}
	}
	local = topoSort(local, byPath)

	prog := &Program{Fset: fset}
	for _, lp := range local {
		pkg, err := checkOne(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		imp.checked[lp.ImportPath] = pkg.Types
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// checkOne parses and type-checks one module-local package from source.
func checkOne(fset *token.FileSet, imp types.ImporterFrom, lp *listedPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, typeErrs[0])
	}
	return &Package{
		PkgPath: lp.ImportPath,
		Dir:     lp.Dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// moduleImporter resolves imports during source type-checking:
// already-checked module-local packages by identity, the standard
// library through gc export data produced by `go list -export`.
type moduleImporter struct {
	fset    *token.FileSet
	listed  map[string]*listedPkg
	checked map[string]*types.Package
	gc      types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	return m.gc.Import(path)
}

// lookup feeds the gc importer the export-data files go list reported.
func (m *moduleImporter) lookup(path string) (io.ReadCloser, error) {
	lp, ok := m.listed[path]
	if !ok || lp.Export == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(lp.Export)
}

// topoSort orders local packages so that imports precede importers.
func topoSort(local []*listedPkg, byPath map[string]*listedPkg) []*listedPkg {
	sort.SliceStable(local, func(i, j int) bool { return local[i].ImportPath < local[j].ImportPath })
	seen := make(map[string]bool)
	var out []*listedPkg
	var visit func(p *listedPkg)
	visit = func(p *listedPkg) {
		if seen[p.ImportPath] {
			return
		}
		seen[p.ImportPath] = true
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok && !dep.Standard {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range local {
		visit(p)
	}
	return out
}

// ModuleRoot walks up from dir to the nearest go.mod, for callers that
// want to report module-relative paths.
func ModuleRoot(dir string) string {
	d, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

// TrimPath renders p relative to root when possible (diagnostics).
func TrimPath(root, p string) string {
	if rel, err := filepath.Rel(root, p); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return p
}
