package hurricane_test

import (
	"testing"

	"hurricane"
)

// TestFacadeExperimentReexports drives the experiment entry points
// through the public facade, the way a downstream user would.
func TestFacadeExperimentReexports(t *testing.T) {
	r, err := hurricane.RunFigure2One(hurricane.Fig2Config{KernelTarget: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalMicros < 15 || r.TotalMicros > 30 {
		t.Fatalf("facade Fig2 total = %.1f us", r.TotalMicros)
	}

	f3, err := hurricane.RunFigure3(2, hurricane.SingleFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Points) != 2 || f3.Points[1].CallsPerSecond <= f3.Points[0].CallsPerSecond {
		t.Fatalf("facade Fig3 points wrong: %+v", f3.Points)
	}

	numa, err := hurricane.RunNUMAAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(numa.LocalMicros) != 16 {
		t.Fatalf("NUMA ablation points = %d", len(numa.LocalMicros))
	}

	li, err := hurricane.RunLockImpact(2)
	if err != nil {
		t.Fatal(err)
	}
	if li.IPCLockAcquires != 0 {
		t.Fatal("facade lock-impact reports IPC locks")
	}
}
