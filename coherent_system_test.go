package hurricane_test

import (
	"fmt"
	"testing"

	"hurricane"
)

// TestFullSystemOnCoherentMachine boots the complete stack on the E11
// counterfactual machine (hardware coherence enabled) and checks the
// whole OS personality still behaves identically — services, naming,
// files, faults. Only costs may differ, never results.
func TestFullSystemOnCoherentMachine(t *testing.T) {
	sys, err := hurricane.NewSystemParams(4, coherentParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.InstallNameServer(0); err != nil {
		t.Fatal(err)
	}
	bob, err := sys.InstallFileServer(0)
	if err != nil {
		t.Fatal(err)
	}
	admin := sys.Kernel().NewClientProgram("admin", 0)
	if err := bob.RegisterName(admin); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		c := sys.Kernel().NewClientProgram(fmt.Sprintf("c%d", i), i)
		ep, err := hurricane.LookupName(c, "bob")
		if err != nil {
			t.Fatal(err)
		}
		tok, err := hurricane.OpenFile(c, ep, "shared", true)
		if err != nil {
			t.Fatal(err)
		}
		if err := hurricane.SetLength(c, ep, tok, uint32(10*(i+1))); err != nil {
			t.Fatal(err)
		}
		n, err := hurricane.GetLength(c, ep, tok)
		if err != nil {
			t.Fatal(err)
		}
		if n != uint32(10*(i+1)) {
			t.Fatalf("client %d read length %d", i, n)
		}
	}
	// The shared file's metadata was cached and ping-ponged: the
	// coherent machine must show invalidation traffic where Hector
	// shows none.
	inv := int64(0)
	for i := 0; i < 4; i++ {
		inv += sys.Machine().Proc(i).DCache().Invalidations
	}
	if inv == 0 {
		t.Fatal("no coherence traffic on a coherent machine with a shared file")
	}
}

func coherentParams() hurricane.Params {
	p := hurricane.DefaultParams()
	p.HardwareCoherence = true
	return p
}

// TestResultsIdenticalAcrossMachines runs the same logical workload on
// both machines and requires identical *functional* results (lengths,
// tokens) even though the cycle costs differ.
func TestResultsIdenticalAcrossMachines(t *testing.T) {
	run := func(params hurricane.Params) []uint32 {
		sys, err := hurricane.NewSystemParams(2, params)
		if err != nil {
			t.Fatal(err)
		}
		bob, err := sys.InstallFileServer(0)
		if err != nil {
			t.Fatal(err)
		}
		var out []uint32
		for i := 0; i < 2; i++ {
			c := sys.Kernel().NewClientProgram(fmt.Sprintf("c%d", i), i)
			tok, err := hurricane.OpenFile(c, bob.EP(), "f", true)
			if err != nil {
				t.Fatal(err)
			}
			if err := hurricane.SetLength(c, bob.EP(), tok, uint32(100+i)); err != nil {
				t.Fatal(err)
			}
			n, err := hurricane.GetLength(c, bob.EP(), tok)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tok, n)
		}
		return out
	}
	a := run(hurricane.DefaultParams())
	b := run(coherentParams())
	if len(a) != len(b) {
		t.Fatal("result shapes differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("functional divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
