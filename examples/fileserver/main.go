// Fileserver example: the paper's Figure 3 scenario driven through the
// public API — Bob the file server on a simulated 8-processor Hector,
// clients on every processor issuing GetLength, first against their
// own files (perfect speedup) and then against one shared file (the
// lock saturates around four processors).
//
// Run with:
//
//	go run ./examples/fileserver
package main

import (
	"fmt"
	"os"

	"hurricane"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fileserver:", err)
		os.Exit(1)
	}
}

func run() error {
	const procs = 8
	sys, err := hurricane.NewSystem(procs)
	if err != nil {
		return err
	}
	if _, err := sys.InstallNameServer(0); err != nil {
		return err
	}
	bob, err := sys.InstallFileServer(0)
	if err != nil {
		return err
	}
	admin := sys.Kernel().NewClientProgram("admin", 0)
	if err := bob.RegisterName(admin); err != nil {
		return err
	}

	// Every processor gets a client; each discovers Bob by name.
	clients := make([]*hurricane.Client, procs)
	for i := 0; i < procs; i++ {
		clients[i] = sys.Kernel().NewClientProgram(fmt.Sprintf("client%d", i), i)
	}
	ep, err := hurricane.LookupName(clients[0], "bob")
	if err != nil {
		return err
	}

	// Different files: write some data, read lengths back.
	fmt.Println("== different files ==")
	for i, c := range clients {
		name := fmt.Sprintf("log%d", i)
		tok, err := hurricane.OpenFile(c, ep, name, true)
		if err != nil {
			return err
		}
		if err := hurricane.SetLength(c, ep, tok, uint32(1000*(i+1))); err != nil {
			return err
		}
		n, err := hurricane.GetLength(c, ep, tok)
		if err != nil {
			return err
		}
		fmt.Printf("  proc %d: %s length %d (served on the caller's own processor)\n", i, name, n)
	}

	// Show per-processor cost is identical (the locality property).
	fmt.Println("\n== per-processor warm GetLength cost ==")
	for i, c := range clients {
		tok, err := hurricane.OpenFile(c, ep, fmt.Sprintf("log%d", i), false)
		if err != nil {
			return err
		}
		for w := 0; w < 3; w++ { // warm
			if _, err := hurricane.GetLength(c, ep, tok); err != nil {
				return err
			}
		}
		p := c.P()
		before := p.Now()
		if _, err := hurricane.GetLength(c, ep, tok); err != nil {
			return err
		}
		us := sys.Machine().Params().CyclesToMicros(p.Now() - before)
		fmt.Printf("  proc %d: %.1f us\n", i, us)
	}

	// Single shared file: the per-file lock is the only shared data.
	fmt.Println("\n== shared file ==")
	shared := make([]uint32, procs)
	for i, c := range clients {
		tok, err := hurricane.OpenFile(c, ep, "shared", true)
		if err != nil {
			return err
		}
		shared[i] = tok
		if _, err := hurricane.GetLength(c, ep, tok); err != nil {
			return err
		}
	}
	lock := bob.FileLock("shared")
	fmt.Printf("  %d processors touched one file: lock acquisitions=%d contentions=%d\n",
		procs, lock.Acquisitions, lock.Contentions)
	fmt.Println("  (run cmd/figure3 for the full throughput curves)")
	return nil
}
