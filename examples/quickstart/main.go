// Quickstart: the rt package — PPC-style service calls between Go
// goroutines with shared-nothing per-shard fast paths.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"hurricane/rt"
)

// Opcodes for the key-value service.
const (
	opPut uint32 = 1
	opGet uint32 = 2
)

func main() {
	sys := rt.NewSystem()

	// A tiny sharded key-value service: each shard keeps its own map
	// (shard-local state set up by the init handler, the paper's
	// worker-initialization pattern), so the service itself needs no
	// locks for shard-local keys.
	states := make([]*kvState, sys.NumShards())

	svc, err := sys.Bind(rt.ServiceConfig{
		Name: "kv",
		InitHandler: func(ctx *rt.Ctx, args *rt.Args) {
			states[ctx.Shard()] = &kvState{m: make(map[uint64]uint64)}
			kvHandle(states, ctx, args)
		},
		Handler: func(ctx *rt.Ctx, args *rt.Args) {
			kvHandle(states, ctx, args)
		},
	})
	if err != nil {
		panic(err)
	}
	if err := sys.Register("kv", svc.EP()); err != nil {
		panic(err)
	}

	// Clients discover the service by name, then call it directly —
	// the caller's goroutine crosses into the handler; no channels, no
	// locks on the path.
	ep, err := sys.Lookup("kv")
	if err != nil {
		panic(err)
	}

	var wg sync.WaitGroup
	goroutines := runtime.GOMAXPROCS(0)
	const callsEach = 100_000
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := sys.NewClient() // one client per goroutine, bound to a shard
			var args rt.Args
			for i := 0; i < callsEach; i++ {
				args[0] = uint64(i % 512) // key
				args[1] = uint64(i)       // value
				args.SetOp(opPut, 0)
				if err := c.Call(ep, &args); err != nil {
					panic(err)
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := int64(goroutines) * callsEach
	fmt.Printf("%d goroutines x %d calls: %v (%.0f ns/call, %d total)\n",
		goroutines, callsEach, elapsed.Round(time.Millisecond),
		float64(elapsed.Nanoseconds())/float64(total), svc.Calls())

	// Read something back.
	c := sys.NewClient()
	var args rt.Args
	args[0] = 42
	args.SetOp(opGet, 0)
	if err := c.Call(ep, &args); err != nil {
		panic(err)
	}
	fmt.Printf("kv[42] on shard %d-ish = %d\n", c.Shard(), args[1])
}

// kvHandle services one request against the shard-local map.
func kvHandle(states []*kvState, ctx *rt.Ctx, args *rt.Args) {
	st := states[ctx.Shard()]
	switch rt.Op(args[rt.OpFlagsWord]) {
	case opPut:
		st.m[args[0]] = args[1]
		args.SetRC(0)
	case opGet:
		args[1] = st.m[args[0]]
		args.SetRC(0)
	default:
		args.SetRC(1)
	}
}

type kvState struct{ m map[uint64]uint64 }
