// Prefetch example: the paper's own use case for asynchronous PPCs
// (§4.4) — "Asynchronous PPC requests are used, for example, to
// initiate a file block prefetch request." A client streams through a
// file, firing async prefetches for the blocks ahead while it
// processes the current one; the caller is placed on the ready queue
// instead of blocking in the worker's call descriptor.
//
// Run with:
//
//	go run ./examples/prefetch
package main

import (
	"fmt"
	"os"

	"hurricane"
)

// Prefetcher opcodes.
const opPrefetch uint16 = 1

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "prefetch:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := hurricane.NewSystem(2)
	if err != nil {
		return err
	}
	k := sys.Kernel()

	// The prefetch service: a kernel-space block cache warmer.
	var fetched []uint32
	cache := map[uint32]bool{}
	svc, err := k.BindService(hurricane.ServiceConfig{
		Name:   "prefetcher",
		Server: k.KernelServer(),
		Handler: func(ctx *hurricane.Ctx, args *hurricane.Args) {
			blk := args[0]
			if !cache[blk] {
				cache[blk] = true
				fetched = append(fetched, blk)
				ctx.Exec(200) // the simulated cost of starting the disk op
			}
			args.SetRC(hurricane.RCOK)
		},
	})
	if err != nil {
		return err
	}

	client := k.NewClientProgram("reader", 0)
	p := client.P()
	params := sys.Machine().Params()

	// Sequential scan with lookahead 2.
	const blocks = 8
	const lookahead = 2
	for blk := uint32(0); blk < blocks; blk++ {
		// Fire prefetches for the window ahead; the async variant
		// returns as soon as the request is handed to the worker.
		for la := uint32(1); la <= lookahead && blk+la < blocks; la++ {
			var args hurricane.Args
			args[0] = blk + la
			args.SetOp(opPrefetch, 0)
			before := p.Now()
			if err := client.AsyncCall(svc.EP(), &args); err != nil {
				return err
			}
			fmt.Printf("prefetch block %d issued asynchronously (%.1f us, caller requeued, not blocked)\n",
				blk+la, params.CyclesToMicros(p.Now()-before))
		}
		// "Process" the current block (charged as client compute).
		p.Charge(500)
	}

	fmt.Printf("\nblocks prefetched in order: %v\n", fetched)
	fmt.Printf("async requests serviced: %d; the client never blocked in a call descriptor\n",
		svc.Stats.AsyncCalls)
	return nil
}
