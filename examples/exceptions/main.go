// Exceptions example: worker fault containment plus the paper's §4.4
// use of upcalls for exception handling and debugging. A flaky server
// crashes on some requests; each fault aborts only that call, destroys
// only that worker, and is delivered to a registered exception server
// as an upcall — while the kernel event trace shows the whole story.
//
// Run with:
//
//	go run ./examples/exceptions
package main

import (
	"fmt"
	"os"

	"hurricane"
	"hurricane/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "exceptions:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := hurricane.NewSystem(2)
	if err != nil {
		return err
	}
	k := sys.Kernel()

	var events core.TraceBuffer
	k.SetTracer(events.Record)

	// The exception server: a debugger-like service that records
	// fault notifications.
	type faultReport struct {
		ep  hurricane.EntryPointID
		pid int
	}
	var reports []faultReport
	excProg := k.NewServerProgram("debugger", 0)
	exc, err := k.BindService(hurricane.ServiceConfig{
		Name:   "debugger",
		Server: excProg,
		Handler: func(ctx *hurricane.Ctx, args *hurricane.Args) {
			reports = append(reports, faultReport{
				ep:  hurricane.EntryPointID(args[0]),
				pid: int(args[1]),
			})
			args.SetRC(hurricane.RCOK)
		},
	})
	if err != nil {
		return err
	}
	k.SetExceptionServer(exc.EP())

	// A service that dereferences a wild pointer on unlucky input.
	flakyProg := k.NewServerProgram("parser", 0)
	flaky, err := k.BindService(hurricane.ServiceConfig{
		Name:   "parser",
		Server: flakyProg,
		Handler: func(ctx *hurricane.Ctx, args *hurricane.Args) {
			if args[0]%5 == 3 {
				panic("parser bug: wild pointer dereference")
			}
			args[1] = args[0] * 2
			args.SetRC(hurricane.RCOK)
		},
	})
	if err != nil {
		return err
	}

	client := k.NewClientProgram("client", 0)
	ok, faults := 0, 0
	for i := uint32(0); i < 10; i++ {
		var args hurricane.Args
		args[0] = i
		if err := client.Call(flaky.EP(), &args); err != nil {
			faults++
			fmt.Printf("request %d: FAULT contained (%v)\n", i, err)
		} else {
			ok++
			fmt.Printf("request %d: ok, result %d\n", i, args[1])
		}
	}

	fmt.Printf("\n%d requests served, %d faults — the parser service never went down\n", ok, faults)
	fmt.Printf("exception server received %d upcall reports:\n", len(reports))
	for _, r := range reports {
		fmt.Printf("  worker fault at entry point %d, caller pid %d\n", r.ep, r.pid)
	}
	fmt.Printf("\nworkers created over the run: %d (each fault destroyed one; Frank replaced it)\n",
		flaky.Stats.WorkersCreated)
	fmt.Printf("kernel trace: %d fault events, %d worker-created events\n",
		events.Count(core.EvFault), events.Count(core.EvWorkerCreated))
	return nil
}
