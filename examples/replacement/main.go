// Replacement example: on-line replacement of an executing server
// (paper §4.5.2) — the Exchange call swaps the implementation behind an
// entry point while clients keep calling, and a soft kill later drains
// and reclaims it without aborting anyone. The entry point ID never
// changes, so clients that resolved it through the name server are
// undisturbed.
//
// Run with:
//
//	go run ./examples/replacement
package main

import (
	"fmt"
	"os"

	"hurricane"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replacement:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := hurricane.NewSystem(2)
	if err != nil {
		return err
	}
	k := sys.Kernel()
	if _, err := sys.InstallNameServer(0); err != nil {
		return err
	}

	// Version 1 of the "quotes" service.
	admin := k.NewClientProgram("admin", 0)
	prog := k.NewServerProgram("quotes", 0)
	svc, err := admin.CreateService(hurricane.ServiceConfig{
		Name:   "quotes",
		Server: prog,
		Handler: func(ctx *hurricane.Ctx, args *hurricane.Args) {
			args[0] = 1 // version
			args[1] = 100 + args[1]%7
			args.SetRC(hurricane.RCOK)
		},
	})
	if err != nil {
		return err
	}
	if err := hurricane.RegisterName(admin, "quotes", svc.EP()); err != nil {
		return err
	}

	client := k.NewClientProgram("client", 1)
	ep, err := hurricane.LookupName(client, "quotes")
	if err != nil {
		return err
	}

	call := func(tag string) error {
		var args hurricane.Args
		args[1] = 3
		if err := client.Call(ep, &args); err != nil {
			return err
		}
		fmt.Printf("%s: served by v%d, quote=%d\n", tag, args[0], args[1])
		return nil
	}
	if err := call("before exchange"); err != nil {
		return err
	}

	// Exchange: same entry point, new implementation; pooled workers
	// pick it up, clients notice nothing but the answers.
	if err := admin.ExchangeService(ep, hurricane.ServiceConfig{
		Name:   "quotes",
		Server: prog,
		Handler: func(ctx *hurricane.Ctx, args *hurricane.Args) {
			args[0] = 2
			args[1] = 200 + args[1]%7
			args.SetRC(hurricane.RCOK)
		},
	}); err != nil {
		return err
	}
	if err := call("after exchange "); err != nil {
		return err
	}

	// Retire the service gently: soft kill lets calls in progress
	// complete and then reclaims every per-processor resource.
	if err := admin.DestroyService(ep, false); err != nil {
		return err
	}
	var args hurricane.Args
	err = client.Call(ep, &args)
	fmt.Printf("after soft kill: call fails cleanly (%v)\n", err)
	fmt.Printf("workers created over the service's life: %d; all reclaimed\n",
		svc.Stats.WorkersCreated)
	return nil
}
