// Interrupts example: the paper's §4.3-4.4 machinery end to end — a
// disk device server with a shared request queue, cross-processor
// submissions from remote clients, and completion interrupts
// manufactured into asynchronous PPC requests, so that from the device
// server's point of view an interrupt looks like any other caller.
//
// Run with:
//
//	go run ./examples/interrupts
package main

import (
	"fmt"
	"os"

	"hurricane"
	"hurricane/internal/services/devserver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "interrupts:", err)
		os.Exit(1)
	}
}

func run() error {
	const procs = 4
	const diskHome = 0
	sys, err := hurricane.NewSystem(procs)
	if err != nil {
		return err
	}
	disk, err := sys.InstallDisk(diskHome)
	if err != nil {
		return err
	}
	fmt.Printf("Disk driver lives on processor %d; its request queue is the one shared structure.\n\n", diskHome)

	// Clients on every processor submit I/O. Local submissions are
	// ordinary PPCs; remote ones take the cross-processor path (shared
	// queue + remote interrupt).
	var ids []uint32
	for i := 0; i < procs; i++ {
		c := sys.Kernel().NewClientProgram(fmt.Sprintf("client%d", i), i)
		id, err := devserver.Submit(sys.Kernel(), disk, c, uint32(100+i), i%2 == 1)
		if err != nil {
			return err
		}
		kind := "local PPC"
		if i != diskHome {
			kind = "cross-processor PPC"
		}
		fmt.Printf("processor %d submitted block %d via %s (request %d)\n", i, 100+i, kind, id)
		ids = append(ids, id)
	}

	fmt.Printf("\ndisk busy: %d queued requests serialize on the head (%.1f ms each)\n",
		len(ids), float64(devserver.BlockTimeCycles)*sys.Machine().Params().CycleNS()/1e6)

	// The device raises completion interrupts; each is dispatched as
	// an async PPC to the disk service on its home processor.
	for _, id := range ids {
		if err := disk.RaiseCompletion(id); err != nil {
			return err
		}
	}
	fmt.Printf("\ncompletions delivered as interrupt-manufactured PPCs: %d\n", disk.Service().Stats.Interrupts)
	fmt.Printf("cross-processor calls made: %d\n", sys.Kernel().Stats.CrossCalls)
	fmt.Printf("disk stats: submitted=%d completed=%d idle-starts=%d\n",
		disk.Submitted, disk.Completed, disk.IdleStarts)

	home := sys.Machine().Proc(diskHome)
	fmt.Printf("\nvirtual time on the disk's processor: %.2f ms\n",
		home.NowMicros()/1000)
	return nil
}
