// Package hurricane is a library-quality reproduction of "Optimizing
// IPC Performance for Shared-Memory Multiprocessors" (Gamsa, Krieger,
// Stumm; CSRI-294, University of Toronto, 1994): the Protected
// Procedure Call (PPC) IPC facility of the Hurricane operating system
// on the Hector NUMA multiprocessor.
//
// The package exposes two tracks:
//
//   - The simulator track (this package): a deterministic cycle-cost
//     model of the 16-processor Hector prototype with the full
//     Hurricane PPC facility on top — per-processor worker and
//     call-descriptor pools, service tables, Frank the resource
//     manager, the name/file/copy/device servers — able to regenerate
//     the paper's Figure 2 (cost breakdown) and Figure 3 (throughput
//     scaling) and several ablations.
//
//   - The rt track (package hurricane/rt): a practical, real-
//     concurrency PPC-style service-call library for Go programs,
//     applying the paper's shared-nothing per-shard design to modern
//     hardware.
//
// Quick start (simulator):
//
//	sys, _ := hurricane.NewSystem(16)
//	srv := sys.Kernel().NewServerProgram("greeter", 0)
//	svc, _ := sys.Kernel().BindService(hurricane.ServiceConfig{
//		Name:   "greeter",
//		Server: srv,
//		Handler: func(ctx *hurricane.Ctx, args *hurricane.Args) {
//			args[0]++
//			args.SetRC(hurricane.RCOK)
//		},
//	})
//	client := sys.Kernel().NewClientProgram("me", 0)
//	var args hurricane.Args
//	client.Call(svc.EP(), &args)
package hurricane

import (
	"hurricane/internal/core"
	"hurricane/internal/experiments"
	"hurricane/internal/machine"
	"hurricane/internal/services/copyserver"
	"hurricane/internal/services/devserver"
	"hurricane/internal/services/fileserver"
	"hurricane/internal/services/nameserver"
)

// Core PPC types, re-exported for public use.
type (
	// Args is the 8-word register argument block of a PPC (in and out).
	Args = core.Args
	// EntryPointID names a service entry point.
	EntryPointID = core.EntryPointID
	// ServiceConfig describes a service to bind.
	ServiceConfig = core.ServiceConfig
	// Service is a bound entry point.
	Service = core.Service
	// Server is a server program.
	Server = core.Server
	// Client is a client program bound to one processor.
	Client = core.Client
	// Ctx is the handler execution context.
	Ctx = core.Ctx
	// Handler is a service call-handling routine.
	Handler = core.Handler
	// Kernel is the simulated Hurricane kernel.
	Kernel = core.Kernel
	// Worker is a server worker process.
	Worker = core.Worker
	// CallError describes a failed call.
	CallError = core.CallError

	// Machine is the simulated Hector multiprocessor.
	Machine = machine.Machine
	// Params are the machine cost parameters.
	Params = machine.Params
	// Breakdown is a per-category cycle account.
	Breakdown = machine.Breakdown
	// Category is a Figure 2 cost category.
	Category = machine.Category
)

// Well-known entry points and return codes.
const (
	// FrankEP is the kernel resource manager's entry point.
	FrankEP = core.FrankEP
	// NameServerEP is the name server's well-known entry point.
	NameServerEP = core.NameServerEP
	// NumArgWords is the register argument count (8 each way).
	NumArgWords = core.NumArgWords

	// RCOK is the success return code.
	RCOK = core.RCOK
	// RCBadEntryPoint: call to an unbound entry point.
	RCBadEntryPoint = core.RCBadEntryPoint
	// RCEntryKilled: call to a killed entry point.
	RCEntryKilled = core.RCEntryKilled
	// RCPermissionDenied: rejected by the server's authorization.
	RCPermissionDenied = core.RCPermissionDenied
)

// DefaultParams returns the Hector prototype parameters (16.67 MHz
// M88100, 16 KB 4-way caches, 16-byte lines, 27-cycle TLB miss,
// ~1.7 us trap pair).
func DefaultParams() Params { return machine.DefaultParams() }

// System bundles a simulated machine with a booted Hurricane kernel.
type System struct {
	m *machine.Machine
	k *core.Kernel
}

// NewSystem boots a system with n processors and default parameters.
func NewSystem(n int) (*System, error) {
	return NewSystemParams(n, machine.DefaultParams())
}

// NewSystemParams boots a system with explicit machine parameters.
func NewSystemParams(n int, params Params) (*System, error) {
	m, err := machine.New(n, params)
	if err != nil {
		return nil, err
	}
	return &System{m: m, k: core.NewKernel(m)}, nil
}

// Machine returns the simulated machine.
func (s *System) Machine() *Machine { return s.m }

// Kernel returns the booted kernel.
func (s *System) Kernel() *Kernel { return s.k }

// InstallNameServer installs the name server (paper §4.5.5) on node.
func (s *System) InstallNameServer(node int) (*NameServer, error) {
	return nameserver.Install(s.k, node)
}

// InstallFileServer installs Bob the file server on node.
func (s *System) InstallFileServer(node int) (*FileServer, error) {
	return fileserver.Install(s.k, node)
}

// InstallCopyServer installs the bulk-transfer CopyServer (paper §4.2).
func (s *System) InstallCopyServer() (*CopyServer, error) {
	return copyserver.Install(s.k)
}

// InstallDisk installs the disk device server (paper §4.3-4.4) with its
// driver on processor home.
func (s *System) InstallDisk(home int) (*Disk, error) {
	return devserver.Install(s.k, home)
}

// Re-exported server types.
type (
	// NameServer maps service names to entry points.
	NameServer = nameserver.Server
	// FileServer is Bob, the Figure 3 file server.
	FileServer = fileserver.Bob
	// CopyServer performs granted bulk data transfers.
	CopyServer = copyserver.CopyServer
	// Disk is the interrupt-driven disk device server.
	Disk = devserver.Disk
)

// Name-server client operations.
var (
	// RegisterName binds a name to an entry point via a PPC call.
	RegisterName = nameserver.Register
	// LookupName resolves a name via a PPC call.
	LookupName = nameserver.Lookup
)

// File-server client operations.
var (
	// OpenFile opens (optionally creating) a file, returning a token.
	OpenFile = fileserver.Open
	// GetLength issues the Figure 3 request.
	GetLength = fileserver.GetLength
	// SetLength truncates or extends a file.
	SetLength = fileserver.SetLength
)

// Experiment re-exports: the paper's figures and the ablations.
type (
	// Fig2Config selects one bar of Figure 2.
	Fig2Config = experiments.Fig2Config
	// Fig2Result is a measured Figure 2 breakdown.
	Fig2Result = experiments.Fig2Result
	// Fig3Mode selects a Figure 3 series.
	Fig3Mode = experiments.Fig3Mode
	// Fig3Result is a measured Figure 3 series.
	Fig3Result = experiments.Fig3Result
)

// Figure 3 modes.
const (
	// DifferentFiles: every client touches its own file (linear).
	DifferentFiles = experiments.DifferentFiles
	// SingleFile: all clients touch one file (saturates at ~4).
	SingleFile = experiments.SingleFile
)

// Experiment entry points.
var (
	// RunFigure2 measures the paper's eight breakdown configurations.
	RunFigure2 = experiments.RunFigure2
	// RunFigure2One measures a single configuration.
	RunFigure2One = experiments.RunFigure2One
	// RunFigure3 measures throughput at 1..n processors.
	RunFigure3 = experiments.RunFigure3
	// RunBaselineComparison contrasts PPC with the locked baseline.
	RunBaselineComparison = experiments.RunBaselineComparison
	// RunStackSharingAblation quantifies serial stack reuse.
	RunStackSharingAblation = experiments.RunStackSharingAblation
	// RunNUMAAblation quantifies the locality discipline.
	RunNUMAAblation = experiments.RunNUMAAblation
	// RunLockImpact profiles the single-file lock.
	RunLockImpact = experiments.RunLockImpact
)
